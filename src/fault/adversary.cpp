#include "fault/adversary.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace steins {

namespace {

/// Reserved quarantine-map region at the top of the address space is out of
/// the attacker's scope (mutating it is a different experiment: it would
/// test the qmap loader, not the replay defenses).
Addr attack_limit(const NvmDevice& dev) { return dev.address_limit() - (Addr{1} << 16); }

AdversarySnapshot::Line read_line(NvmDevice& dev, Addr addr) {
  return {dev.peek_block(addr), dev.read_tag(addr), dev.read_tag2(addr)};
}

bool same_line(const AdversarySnapshot::Line& a, const AdversarySnapshot::Line& b) {
  return a.block == b.block && a.tag == b.tag && a.tag2 == b.tag2;
}

/// Restore a line to its snapshot state — or to blank, modeling the
/// destructive erase of a line the snapshot never saw.
void restore_line(NvmDevice& dev, Addr addr, const AdversarySnapshot& snap) {
  const auto it = snap.lines.find(addr);
  if (it != snap.lines.end()) {
    dev.poke_block(addr, it->second.block);
    dev.write_tag(addr, it->second.tag);
    dev.write_tag2(addr, it->second.tag2);
  } else {
    dev.poke_block(addr, zero_block());
    dev.write_tag(addr, 0);
    dev.write_tag2(addr, 0);
  }
}

/// Resident lines in [lo, hi) whose current state differs from the
/// snapshot (including lines born after it). Sorted by address, so every
/// downstream pick is deterministic.
std::vector<Addr> changed_lines(SecureMemoryBase& mem, const AdversarySnapshot& snap,
                                Addr lo, Addr hi) {
  std::vector<Addr> out;
  NvmDevice& dev = mem.device();
  for (const Addr a : dev.resident_blocks(lo, hi)) {
    const auto it = snap.lines.find(a);
    if (it == snap.lines.end() || !same_line(read_line(dev, a), it->second)) {
      out.push_back(a);
    }
  }
  return out;
}

std::string hex_addr(Addr a) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(a));
  return buf;
}

std::string node_label(const SitGeometry& geo, Addr addr) {
  const NodeId id = geo.node_at(addr);
  return "L" + std::to_string(id.level) + "#" + std::to_string(id.index);
}

void append_event(std::string* events, const std::string& e) {
  if (events == nullptr) return;
  if (!events->empty()) *events += "; ";
  *events += e;
}

/// True when `node` lies in the subtree rooted at `root`.
bool in_subtree(const SitGeometry& geo, NodeId node, NodeId root) {
  if (node.level > root.level) return false;
  NodeId cur = node;
  while (cur.level < root.level) cur = geo.parent_of(cur);
  return cur.index == root.index;
}

/// Data byte range [lo, hi) covered by `root`'s subtree.
std::pair<Addr, Addr> subtree_data_span(const SitGeometry& geo, NodeId root) {
  std::uint64_t leaves_per = 1;
  for (unsigned l = 0; l < root.level; ++l) leaves_per *= kTreeArity;
  const std::uint64_t first_leaf = root.index * leaves_per;
  const std::uint64_t end_leaf =
      std::min<std::uint64_t>(first_leaf + leaves_per, geo.level_count(0));
  return {first_leaf * geo.leaf_coverage() * kBlockSize,
          end_leaf * geo.leaf_coverage() * kBlockSize};
}

bool rollback_one_node(SecureMemoryBase& mem, const std::vector<Addr>& candidates,
                       Xoshiro256& rng, const AdversarySnapshot& snap,
                       const char* what, std::string* events) {
  if (candidates.empty()) return false;
  const Addr addr = candidates[rng.below(candidates.size())];
  restore_line(mem.device(), addr, snap);
  append_event(events, std::string(what) + " " + node_label(mem.geometry(), addr) +
                           " @" + hex_addr(addr));
  return true;
}

/// Tear `addr` between its snapshot image (old) and current image (new) at
/// 8-byte word granularity: the mask of new words is never zero and never
/// all-ones, and the ECC-colocated tag counts as the last word.
void tear_line(NvmDevice& dev, Addr addr, const AdversarySnapshot& snap,
               Xoshiro256& rng) {
  const auto it = snap.lines.find(addr);
  const AdversarySnapshot::Line oldv =
      it != snap.lines.end() ? it->second : AdversarySnapshot::Line{};
  const AdversarySnapshot::Line newv = read_line(dev, addr);
  const unsigned mask = 1 + static_cast<unsigned>(rng.below(254));  // (0, 255)
  Block mixed = oldv.block;
  for (unsigned w = 0; w < kBlockSize / 8; ++w) {
    if ((mask >> w) & 1u) {
      std::memcpy(mixed.data() + w * 8, newv.block.data() + w * 8, 8);
    }
  }
  dev.poke_block(addr, mixed);
  dev.write_tag(addr, rng.below(2) ? newv.tag : oldv.tag);
  dev.write_tag2(addr, rng.below(2) ? newv.tag2 : oldv.tag2);
}

/// dirty->clean record forgery: erase the resident aux tracking lines
/// (offset records / shadow table / dirty bitmap). The recovered dirty set
/// then understates the real one, which the LInc sums (Steins) or the
/// cache-tree root (ASIT/STAR) must catch.
bool forge_dirty_to_clean(SecureMemoryBase& mem, std::string* events) {
  NvmDevice& dev = mem.device();
  const std::vector<Addr> aux =
      dev.resident_blocks(mem.geometry().aux_base(), attack_limit(dev));
  if (aux.empty()) return false;
  for (const Addr a : aux) dev.poke_block(a, zero_block());
  append_event(events, "erased " + std::to_string(aux.size()) + " aux tracking lines");
  return true;
}

/// clean->dirty record forgery, Steins: plant the offsets of persisted,
/// UNCHANGED (clean) nodes into empty record slots. Recovery must shrug
/// these off — a clean node contributes increment 0 (§III-H).
bool forge_clean_to_dirty_steins(SecureMemoryBase& mem, const AdversarySnapshot& snap,
                                 Xoshiro256& rng, std::string* events) {
  NvmDevice& dev = mem.device();
  const SitGeometry& geo = mem.geometry();
  const std::vector<Addr> aux = dev.resident_blocks(geo.aux_base(), attack_limit(dev));
  if (aux.empty()) return false;
  // Clean candidates: resident node lines identical to their snapshot.
  std::vector<std::uint32_t> clean_offsets;
  for (const Addr a : dev.resident_blocks(geo.meta_base(), geo.aux_base())) {
    const auto it = snap.lines.find(a);
    if (it != snap.lines.end() && same_line(read_line(dev, a), it->second)) {
      clean_offsets.push_back(geo.offset_of(geo.node_at(a)));
    }
  }
  if (clean_offsets.empty()) return false;
  int planted = 0;
  for (const Addr laddr : aux) {
    Block line = dev.peek_block(laddr);
    bool changed = false;
    for (std::size_t s = 0; s < kBlockSize / 4 && planted < 3; ++s) {
      std::uint32_t off;
      std::memcpy(&off, line.data() + s * 4, 4);
      if (off != 0) continue;
      off = clean_offsets[rng.below(clean_offsets.size())] + 1;
      std::memcpy(line.data() + s * 4, &off, 4);
      ++planted;
      changed = true;
    }
    if (changed) dev.poke_block(laddr, line);
    if (planted >= 3) break;
  }
  if (planted == 0) return false;
  append_event(events, "planted " + std::to_string(planted) + " forged record offsets");
  return true;
}

/// clean->dirty record forgery, STAR: set the dirty-bitmap bits of
/// unchanged nodes.
bool forge_clean_to_dirty_star(SecureMemoryBase& mem, const AdversarySnapshot& snap,
                               Xoshiro256& rng, std::string* events) {
  NvmDevice& dev = mem.device();
  const SitGeometry& geo = mem.geometry();
  std::vector<std::uint32_t> clean_offsets;
  for (const Addr a : dev.resident_blocks(geo.meta_base(), geo.aux_base())) {
    const auto it = snap.lines.find(a);
    if (it != snap.lines.end() && same_line(read_line(dev, a), it->second)) {
      clean_offsets.push_back(geo.offset_of(geo.node_at(a)));
    }
  }
  if (clean_offsets.empty()) return false;
  int planted = 0;
  for (int tries = 0; tries < 8 && planted < 3; ++tries) {
    const std::uint32_t off = clean_offsets[rng.below(clean_offsets.size())];
    const Addr laddr = geo.aux_base() + (off / (kBlockSize * 8)) * kBlockSize;
    Block line = dev.peek_block(laddr);
    const std::size_t bit = off % (kBlockSize * 8);
    if ((line[bit / 8] >> (bit % 8)) & 1u) continue;  // already dirty
    line[bit / 8] = static_cast<std::uint8_t>(line[bit / 8] | (1u << (bit % 8)));
    dev.poke_block(laddr, line);
    ++planted;
  }
  if (planted == 0) return false;
  append_event(events, "set " + std::to_string(planted) + " forged dirty-bitmap bits");
  return true;
}

}  // namespace

const char* adversary_scenario_name(AdversaryScenario s) {
  switch (s) {
    case AdversaryScenario::kNodeRollback:
      return "node-rollback";
    case AdversaryScenario::kSubtreeRollback:
      return "subtree-rollback";
    case AdversaryScenario::kNvBypassReplay:
      return "nv-bypass-replay";
    case AdversaryScenario::kRecordForgery:
      return "record-forgery";
    case AdversaryScenario::kTornRecord:
      return "torn-record";
    case AdversaryScenario::kDataReplay:
      return "data-replay";
    case AdversaryScenario::kWearOut:
      return "wear-out";
  }
  return "?";
}

std::optional<AdversaryScenario> parse_adversary_scenario(std::string_view name) {
  for (const AdversaryScenario s : all_adversary_scenarios()) {
    if (name == adversary_scenario_name(s)) return s;
  }
  if (name == "node") return AdversaryScenario::kNodeRollback;
  if (name == "subtree") return AdversaryScenario::kSubtreeRollback;
  if (name == "bypass") return AdversaryScenario::kNvBypassReplay;
  if (name == "forge" || name == "forgery") return AdversaryScenario::kRecordForgery;
  if (name == "torn") return AdversaryScenario::kTornRecord;
  if (name == "data" || name == "replay") return AdversaryScenario::kDataReplay;
  if (name == "wear") return AdversaryScenario::kWearOut;
  return std::nullopt;
}

const std::vector<AdversaryScenario>& all_adversary_scenarios() {
  static const std::vector<AdversaryScenario> kAll = {
      AdversaryScenario::kNodeRollback,   AdversaryScenario::kSubtreeRollback,
      AdversaryScenario::kNvBypassReplay, AdversaryScenario::kRecordForgery,
      AdversaryScenario::kTornRecord,     AdversaryScenario::kDataReplay,
      AdversaryScenario::kWearOut,
  };
  return kAll;
}

AdversaryPlan AdversaryPlan::derive(AdversaryScenario s, std::uint64_t campaign_seed,
                                    std::uint64_t trial) {
  // The same mixing shape as FaultPlan::derive, displaced by a scenario tag
  // so adversary streams never collide with fault streams.
  SplitMix64 sm(campaign_seed ^ (trial * 0x9e3779b97f4a7c15ULL) ^
                (static_cast<std::uint64_t>(s) << 56) ^ 0xadea5a11ULL);
  AdversaryPlan p;
  p.scenario = s;
  p.seed = sm.next();
  return p;
}

AdversarySnapshot snapshot_device(SecureMemoryBase& mem) {
  AdversarySnapshot snap;
  NvmDevice& dev = mem.device();
  const SitGeometry& geo = mem.geometry();
  const Addr cap = mem.config().nvm.capacity_bytes;
  const auto capture = [&](Addr lo, Addr hi) {
    for (const Addr a : dev.resident_blocks(lo, hi)) {
      snap.lines.emplace(a, read_line(dev, a));
    }
    // Lines carrying only a tag sidecar still matter to a replay.
    for (const Addr a : dev.resident_tags(lo, hi)) {
      snap.lines.emplace(a, read_line(dev, a));
    }
  };
  capture(0, cap);                          // user data
  capture(geo.meta_base(), geo.aux_base()); // SIT nodes
  capture(geo.aux_base(), attack_limit(dev));  // tracking regions
  return snap;
}

bool apply_adversary_post_crash(SecureMemoryBase& mem, Scheme scheme,
                                const AdversaryPlan& plan,
                                const AdversarySnapshot& snap, std::string* events) {
  NvmDevice& dev = mem.device();
  const SitGeometry& geo = mem.geometry();
  Xoshiro256 rng(plan.seed);
  const std::vector<Addr> changed_nodes =
      changed_lines(mem, snap, geo.meta_base(), geo.aux_base());

  switch (plan.scenario) {
    case AdversaryScenario::kNodeRollback:
      return rollback_one_node(mem, changed_nodes, rng, snap, "rollback node", events);

    case AdversaryScenario::kSubtreeRollback: {
      // Prefer an internal root: the whole-subtree replay is the consistent
      // stale state a single-node check cannot see. Fall back to a leaf
      // (node + its covered data lines).
      std::vector<Addr> internals;
      for (const Addr a : changed_nodes) {
        if (geo.node_at(a).level >= 1) internals.push_back(a);
      }
      const std::vector<Addr>& pool = internals.empty() ? changed_nodes : internals;
      if (pool.empty()) return false;
      const Addr root_addr = pool[rng.below(pool.size())];
      const NodeId root = geo.node_at(root_addr);
      std::size_t reverted = 0;
      for (const Addr a : changed_nodes) {
        if (in_subtree(geo, geo.node_at(a), root)) {
          restore_line(dev, a, snap);
          ++reverted;
        }
      }
      const auto [dlo, dhi] = subtree_data_span(geo, root);
      for (const Addr a : changed_lines(mem, snap, dlo, dhi)) {
        restore_line(dev, a, snap);
        ++reverted;
      }
      append_event(events, "rollback subtree " + node_label(geo, root_addr) + " (" +
                               std::to_string(reverted) + " lines)");
      return reverted > 0;
    }

    case AdversaryScenario::kNvBypassReplay: {
      // Replay around the NV parent buffer: target a node whose generated
      // parent counter is still parked there, so the stale image races the
      // buffered update. Schemes without a buffer degrade to node rollback.
      std::vector<Addr> buffered;
      for (const Addr a : changed_nodes) {
        if (mem.pending_parent_counter(geo.node_at(a)).has_value()) {
          buffered.push_back(a);
        }
      }
      const std::vector<Addr>& pool = buffered.empty() ? changed_nodes : buffered;
      return rollback_one_node(mem, pool, rng, snap,
                               buffered.empty() ? "rollback node (no buffered target)"
                                                : "rollback buffered node",
                               events);
    }

    case AdversaryScenario::kRecordForgery: {
      // Direction from the seed; clean->dirty planting needs a scheme whose
      // tracking entries an attacker can synthesize (Steins offsets, STAR
      // bitmap bits) — otherwise the erase direction applies.
      const bool clean_to_dirty = rng.below(2) == 1;
      if (clean_to_dirty && scheme == Scheme::kSteins) {
        if (forge_clean_to_dirty_steins(mem, snap, rng, events)) return true;
      }
      if (clean_to_dirty && scheme == Scheme::kStar) {
        if (forge_clean_to_dirty_star(mem, snap, rng, events)) return true;
      }
      if (forge_dirty_to_clean(mem, events)) return true;
      // No aux region in play (SCUE/WB): the forgery degrades to a replay.
      return rollback_one_node(mem, changed_nodes, rng, snap,
                               "rollback node (no aux region)", events);
    }

    case AdversaryScenario::kTornRecord: {
      std::vector<Addr> targets =
          changed_lines(mem, snap, geo.aux_base(), attack_limit(dev));
      // A multi-line tear needs at least two lines; top up from the node
      // region (a torn multi-line metadata update) when records are scarce.
      if (targets.size() < 2) {
        for (const Addr a : changed_nodes) {
          targets.push_back(a);
          if (targets.size() >= 3) break;
        }
      }
      if (targets.empty()) return false;
      const std::size_t count = std::min<std::size_t>(targets.size(), 2 + rng.below(2));
      // Tear a deterministic selection: shuffle-free, stride from the seed.
      const std::size_t start = rng.below(targets.size());
      for (std::size_t k = 0; k < count; ++k) {
        tear_line(dev, targets[(start + k) % targets.size()], snap, rng);
      }
      append_event(events, "tore " + std::to_string(count) + " of " +
                               std::to_string(targets.size()) + " record/meta lines");
      return true;
    }

    case AdversaryScenario::kDataReplay:
    case AdversaryScenario::kWearOut:
      return false;  // runtime scenarios: nothing to do at the crash
  }
  return false;
}

bool apply_data_replay(SecureMemoryBase& mem, const AdversaryPlan& plan,
                       const AdversarySnapshot& snap, std::string* events) {
  const std::vector<Addr> changed =
      changed_lines(mem, snap, 0, mem.config().nvm.capacity_bytes);
  if (changed.empty()) return false;
  Xoshiro256 rng(plan.seed);
  const Addr addr = changed[rng.below(changed.size())];
  restore_line(mem.device(), addr, snap);
  append_event(events,
               "replayed data block " + std::to_string(addr / kBlockSize) + " mid-run");
  return true;
}

std::vector<SchemeSpec> attack_schemes() {
  std::vector<SchemeSpec> schemes = campaign_schemes(CounterMode::kGeneral);
  schemes.push_back({Scheme::kWriteBack, CounterMode::kGeneral,
                     scheme_name(Scheme::kWriteBack, CounterMode::kGeneral)});
  return schemes;
}

AttackOutcome run_attack_trial(const SchemeSpec& spec, AdversaryScenario scenario,
                               std::uint64_t campaign_seed, std::uint64_t trial,
                               const FaultTrialOptions& workload) {
  const AdversaryPlan plan = AdversaryPlan::derive(scenario, campaign_seed, trial);
  FaultTrialOptions w = workload;
  TrialHooks hooks;
  hooks.strict_window = true;
  auto snap = std::make_shared<AdversarySnapshot>();
  // Record mid-phase-1, right after the extra flush the hook triggers: the
  // later checkpoint flush then persists acknowledged-durable updates the
  // adversary can try to replay around. Snapshotting at the checkpoint
  // itself would leave almost nothing changed on the media by crash time
  // (burst metadata stays cached), making most rollbacks vacuous no-ops.
  hooks.mid_workload = [snap](SecureMemoryBase& m) { *snap = snapshot_device(m); };

  switch (scenario) {
    case AdversaryScenario::kDataReplay: {
      // Arm a few accesses into the burst, then re-try on a stride until a
      // data line has actually advanced past the snapshot.
      const std::uint64_t trigger = 4 + plan.seed % 24;
      hooks.mid_burst = [snap, plan, trigger](SecureMemoryBase& m, std::uint64_t i) {
        if (i < trigger || (i - trigger) % 8 != 0) return false;
        return apply_data_replay(m, plan, *snap, nullptr);
      };
      break;
    }
    case AdversaryScenario::kWearOut:
      // Accelerated endurance on a tiny hot footprint with a spare pool too
      // small to absorb it: lines wear-level, then run to failure, and the
      // retirements flow through scrub/quarantine. The latency clock arms
      // at the first observed casualty.
      // Tuned so the DATA lines themselves run to failure within a trial:
      // schemes that cache metadata write little else to the media, and a
      // footprint the stream revisits ~30x at a ~24-write limit retires
      // lines under every scheme, not just the shadow-table-heavy ones.
      w.endurance_mean_writes = 24;
      w.endurance_sigma_writes = 4;
      w.remap_pool_lines = 4;
      w.footprint_blocks = 12;
      // Floor the op count: below ~384 phase-1 accesses the stream cannot
      // push any line past its limit and the scenario degenerates to a
      // no-op for every caller that shrinks the workload (tests do).
      w.ops = std::max<std::uint64_t>(w.ops, 384);
      hooks.mid_burst = [](SecureMemoryBase& m, std::uint64_t) {
        return m.device().stats().lines_worn_out > 0 ||
               m.ft_stats().lines_quarantined > 0;
      };
      break;
    default:
      hooks.post_crash = [snap, plan, scheme = spec.scheme](SecureMemoryBase& m,
                                                           std::string* ev) {
        return apply_adversary_post_crash(m, scheme, plan, *snap, ev);
      };
      break;
  }

  AttackOutcome out;
  out.scenario = scenario;
  out.trial = run_fault_trial_hooked(spec, FaultClass::kNone, campaign_seed, trial, w,
                                     &hooks);
  return out;
}

AttackCampaignResult run_attack_campaign(const AttackCampaignOptions& opts) {
  if (opts.trials == 0 && !opts.only_trial.has_value()) {
    throw std::invalid_argument(
        "attack campaign with 0 trials would report vacuous success; "
        "pass --trials >= 1 or reproduce one index with --trial");
  }
  AttackCampaignResult result;
  result.options = opts;
  if (result.options.schemes.empty()) result.options.schemes = attack_schemes();
  if (result.options.scenarios.empty()) {
    result.options.scenarios = all_adversary_scenarios();
  }
  const auto& schemes = result.options.schemes;
  const auto& scenarios = result.options.scenarios;

  std::vector<std::uint64_t> trials;
  if (result.options.only_trial.has_value()) {
    trials.push_back(*result.options.only_trial);
  } else {
    trials.resize(result.options.trials);
    for (std::uint64_t t = 0; t < result.options.trials; ++t) trials[t] = t;
  }

  // Pre-assigned result slots, exactly like the fault campaign: each cell
  // is a pure function of its indices, so the outcome vector is
  // bit-identical for any job count.
  result.outcomes.resize(trials.size() * schemes.size());
  const auto run_cell = [&](std::size_t idx) {
    const std::uint64_t trial = trials[idx / schemes.size()];
    const SchemeSpec& spec = schemes[idx % schemes.size()];
    const AdversaryScenario sc = scenarios[trial % scenarios.size()];
    result.outcomes[idx] =
        run_attack_trial(spec, sc, result.options.seed, trial, result.options.workload);
  };

  if (result.options.jobs <= 1) {
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) run_cell(i);
  } else {
    ThreadPool pool(result.options.jobs);
    pool.for_each_index(result.outcomes.size(), run_cell);
  }
  return result;
}

std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, unsigned p) {
  if (sorted.empty()) return 0;
  const std::size_t idx = (static_cast<std::size_t>(p) * (sorted.size() - 1) + 50) / 100;
  return sorted[std::min(idx, sorted.size() - 1)];
}

AttackCell AttackCampaignResult::cell(const std::string& scheme,
                                      AdversaryScenario s) const {
  AttackCell c;
  for (const AttackOutcome& o : outcomes) {
    if (o.trial.scheme != scheme || o.scenario != s) continue;
    switch (o.trial.verdict) {
      case FaultVerdict::kDetected:
        ++c.detected;
        c.latencies.push_back(o.trial.detect_latency);
        ++c.layers[o.trial.detect_layer];
        break;
      case FaultVerdict::kRecovered:
        ++c.recovered;
        break;
      case FaultVerdict::kSalvaged:
        ++c.salvaged;
        break;
      case FaultVerdict::kSilentCorruption:
        ++c.silent;
        break;
      case FaultVerdict::kRecoveredAfterRetry:
        // Attack trials don't arm nested recovery crashes; fold a retried
        // convergence into recovered, and a give-up into the failure bucket.
        ++c.recovered;
        break;
      case FaultVerdict::kRecoveryCrashUnrecoverable:
        ++c.silent;
        break;
    }
    if (o.trial.faults_injected > 0) ++c.injected;
    c.blast_lines.push_back(o.trial.blast_lines + o.trial.blast_subtrees);
    c.blast_blocks.push_back(o.trial.blast_blocks);
  }
  std::sort(c.latencies.begin(), c.latencies.end());
  std::sort(c.blast_lines.begin(), c.blast_lines.end());
  std::sort(c.blast_blocks.begin(), c.blast_blocks.end());
  return c;
}

std::uint64_t AttackCampaignResult::silent_total() const {
  std::uint64_t n = 0;
  for (const AttackOutcome& o : outcomes) {
    if (o.trial.verdict == FaultVerdict::kSilentCorruption) ++n;
  }
  return n;
}

std::vector<const AttackOutcome*> AttackCampaignResult::silent_outcomes() const {
  std::vector<const AttackOutcome*> out;
  for (const AttackOutcome& o : outcomes) {
    if (o.trial.verdict == FaultVerdict::kSilentCorruption) out.push_back(&o);
  }
  return out;
}

void AttackCampaignResult::print(bool verbose, std::FILE* out) const {
  std::fprintf(out,
               "verdict matrix: detected/recovered/salvaged/SILENT per (scheme, scenario)\n");
  int label_w = 10;
  for (const SchemeSpec& s : options.schemes) {
    label_w = std::max(label_w, static_cast<int>(s.label.size()) + 2);
  }
  std::fprintf(out, "%-*s", label_w, "");
  for (const AdversaryScenario s : options.scenarios) {
    std::fprintf(out, " %17s", adversary_scenario_name(s));
  }
  std::fprintf(out, "\n");
  for (const SchemeSpec& spec : options.schemes) {
    std::fprintf(out, "%-*s", label_w, spec.label.c_str());
    for (const AdversaryScenario s : options.scenarios) {
      const AttackCell c = cell(spec.label, s);
      char buf[48];
      std::snprintf(buf, sizeof buf, "%llu/%llu/%llu/%llu",
                    static_cast<unsigned long long>(c.detected),
                    static_cast<unsigned long long>(c.recovered),
                    static_cast<unsigned long long>(c.salvaged),
                    static_cast<unsigned long long>(c.silent));
      std::fprintf(out, " %17s", buf);
    }
    std::fprintf(out, "\n");
  }
  std::fprintf(out, "\ndetection latency (accesses injection -> check) and blast radius:\n");
  for (const SchemeSpec& spec : options.schemes) {
    for (const AdversaryScenario s : options.scenarios) {
      const AttackCell c = cell(spec.label, s);
      if (c.total() == 0) continue;
      std::string layers;
      for (const auto& [layer, n] : c.layers) {
        layers += (layers.empty() ? "" : ",") + layer + ":" + std::to_string(n);
      }
      std::fprintf(out,
                   "  %-12s %-17s injected %llu/%llu  lat p50/p95/max %llu/%llu/%llu"
                   "  blast-lines p95 %llu  blast-blocks p95 %llu  [%s]\n",
                   spec.label.c_str(), adversary_scenario_name(s),
                   static_cast<unsigned long long>(c.injected),
                   static_cast<unsigned long long>(c.total()),
                   static_cast<unsigned long long>(percentile(c.latencies, 50)),
                   static_cast<unsigned long long>(percentile(c.latencies, 95)),
                   static_cast<unsigned long long>(
                       c.latencies.empty() ? 0 : c.latencies.back()),
                   static_cast<unsigned long long>(percentile(c.blast_lines, 95)),
                   static_cast<unsigned long long>(percentile(c.blast_blocks, 95)),
                   layers.c_str());
    }
  }
  const std::uint64_t silent = silent_total();
  std::fprintf(out, "\ntrials: %llu x %zu schemes  silent-corruption: %llu\n",
               static_cast<unsigned long long>(
                   options.only_trial.has_value() ? 1 : options.trials),
               options.schemes.size(), static_cast<unsigned long long>(silent));
  if (silent > 0 || verbose) {
    for (const AttackOutcome* o : silent_outcomes()) {
      std::fprintf(out, "SILENT trial %llu scheme %s scenario %s: %s\n  events: %s\n",
                   static_cast<unsigned long long>(o->trial.trial),
                   o->trial.scheme.c_str(), adversary_scenario_name(o->scenario),
                   o->trial.detail.c_str(), o->trial.events.c_str());
    }
  }
  if (verbose) {
    for (const AttackOutcome& o : outcomes) {
      std::fprintf(out, "trial %llu %s %s -> %s layer=%s lat=%llu blast=%llu/%llu/%llu%s%s%s\n",
                   static_cast<unsigned long long>(o.trial.trial), o.trial.scheme.c_str(),
                   adversary_scenario_name(o.scenario), fault_verdict_name(o.trial.verdict),
                   o.trial.detect_layer.empty() ? "-" : o.trial.detect_layer.c_str(),
                   static_cast<unsigned long long>(o.trial.detect_latency),
                   static_cast<unsigned long long>(o.trial.blast_lines),
                   static_cast<unsigned long long>(o.trial.blast_subtrees),
                   static_cast<unsigned long long>(o.trial.blast_blocks),
                   o.trial.detail.empty() ? "" : " (", o.trial.detail.c_str(),
                   o.trial.detail.empty() ? "" : ")");
    }
  }
}

std::string AttackCampaignResult::to_json() const {
  std::ostringstream os;
  os << "{\"trials\": " << (options.only_trial.has_value() ? 1 : options.trials)
     << ", \"seed\": " << options.seed << ", \"jobs\": " << options.jobs;
  if (options.only_trial.has_value()) os << ", \"only_trial\": " << *options.only_trial;
  os << ",\n \"schemes\": [";
  for (std::size_t i = 0; i < options.schemes.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(options.schemes[i].label) << '"';
  }
  os << "],\n \"scenarios\": [";
  for (std::size_t i = 0; i < options.scenarios.size(); ++i) {
    os << (i ? ", " : "") << '"' << adversary_scenario_name(options.scenarios[i]) << '"';
  }
  os << "],\n \"matrix\": [";
  bool first = true;
  for (const SchemeSpec& spec : options.schemes) {
    for (const AdversaryScenario s : options.scenarios) {
      const AttackCell c = cell(spec.label, s);
      if (c.total() == 0) continue;
      os << (first ? "" : ",") << "\n  {\"scheme\": \"" << json_escape(spec.label)
         << "\", \"scenario\": \"" << adversary_scenario_name(s)
         << "\", \"detected\": " << c.detected << ", \"recovered\": " << c.recovered
         << ", \"salvaged\": " << c.salvaged << ", \"silent_corruption\": " << c.silent
         << ", \"injected\": " << c.injected
         << ",\n   \"detect_latency\": {\"p50\": " << percentile(c.latencies, 50)
         << ", \"p95\": " << percentile(c.latencies, 95)
         << ", \"max\": " << (c.latencies.empty() ? 0 : c.latencies.back()) << "}"
         << ",\n   \"blast_lines\": {\"p50\": " << percentile(c.blast_lines, 50)
         << ", \"p95\": " << percentile(c.blast_lines, 95)
         << ", \"max\": " << (c.blast_lines.empty() ? 0 : c.blast_lines.back()) << "}"
         << ",\n   \"blast_blocks\": {\"p50\": " << percentile(c.blast_blocks, 50)
         << ", \"p95\": " << percentile(c.blast_blocks, 95)
         << ", \"max\": " << (c.blast_blocks.empty() ? 0 : c.blast_blocks.back()) << "}"
         << ",\n   \"layers\": {";
      bool lf = true;
      for (const auto& [layer, n] : c.layers) {
        os << (lf ? "" : ", ") << '"' << json_escape(layer) << "\": " << n;
        lf = false;
      }
      os << "}}";
      first = false;
    }
  }
  os << "\n ],\n \"silent_total\": " << silent_total() << ",\n \"silent_trials\": [";
  const auto silents = silent_outcomes();
  for (std::size_t i = 0; i < silents.size(); ++i) {
    const AttackOutcome* o = silents[i];
    os << (i ? "," : "") << "\n  {\"trial\": " << o->trial.trial << ", \"scheme\": \""
       << json_escape(o->trial.scheme) << "\", \"scenario\": \""
       << adversary_scenario_name(o->scenario) << "\", \"detail\": \""
       << json_escape(o->trial.detail) << "\", \"events\": \""
       << json_escape(o->trial.events) << "\"}";
  }
  os << "\n ]}\n";
  return os.str();
}

}  // namespace steins

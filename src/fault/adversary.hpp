// Adversarial scenario engine (paper §II-A threat model, §III-H attack
// taxonomy), layered on the fault campaign's trial anatomy.
//
// Where the FaultInjector models *accidental* failures (torn queue drains,
// media flips), the adversary models a deliberate attacker with full
// read/record/modify access to the NVM array and the memory bus but no
// access to the on-chip domain (keys, root registers, LIncs, ADR). Each
// scenario snapshots persisted state at the trial's checkpoint flush and
// replays, forges, or tears it at a crash or scrub boundary:
//
//   node-rollback     one persisted SIT node (image + ECC-colocated tags)
//                     reverted to its checkpoint version;
//   subtree-rollback  an internal node plus every persisted descendant and
//                     the covered data lines reverted wholesale — the
//                     consistent-stale-state replay the LIncs exist for;
//   nv-bypass-replay  rollback targeting a node whose generated parent
//                     counter sits in the NV buffer (Steins §III-E), i.e.
//                     replayed around the buffered update;
//   record-forgery    the aux tracking region rewritten dirty->clean
//                     (entries erased) or clean->dirty (plausible entries
//                     planted) per §III-H;
//   torn-record       2-3 aux/metadata lines torn between their checkpoint
//                     and crash images at 8-byte word granularity — a
//                     multi-line record update that lands partially;
//   data-replay       a data line + tag sidecars replayed at runtime,
//                     mid-burst (caught by patrol scrub, a demand read, or
//                     recovery — whichever fires first);
//   wear-out          no mutation: accelerated per-cell endurance with a
//                     tiny spare pool, driving uncorrectable-line
//                     retirement through the quarantine machinery.
//
// Trials reuse run_fault_trial_hooked() with a clean crash (the queue
// drains intact), so the audit runs in strict-window mode: every posted
// write was acknowledged durable, and serving ANY older version is silent
// corruption unless a check fired first. Verdicts carry detection latency
// (accesses from injection to the firing check) and blast radius
// (lines/subtrees/blocks quarantined).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/campaign.hpp"

namespace steins {

enum class AdversaryScenario {
  kNodeRollback,
  kSubtreeRollback,
  kNvBypassReplay,
  kRecordForgery,
  kTornRecord,
  kDataReplay,
  kWearOut,
};

/// Canonical CLI name, e.g. "subtree-rollback".
const char* adversary_scenario_name(AdversaryScenario s);

/// Parse a CLI name (canonical or short alias: node, subtree, bypass,
/// forge, torn, data, wear).
std::optional<AdversaryScenario> parse_adversary_scenario(std::string_view name);

/// Every scenario, in matrix-column order.
const std::vector<AdversaryScenario>& all_adversary_scenarios();

/// Seed-derived description of one adversarial mutation; the analog of
/// FaultPlan, and the same purity contract: every decision the scenario
/// makes derives from (scenario, campaign seed, trial index).
struct AdversaryPlan {
  AdversaryScenario scenario = AdversaryScenario::kNodeRollback;
  std::uint64_t seed = 0;

  static AdversaryPlan derive(AdversaryScenario s, std::uint64_t campaign_seed,
                              std::uint64_t trial);
};

/// Bus-snooping snapshot: block image plus both ECC-colocated tag sidecars
/// for every resident line of the data, SIT-node, and aux regions.
struct AdversarySnapshot {
  struct Line {
    Block block{};
    std::uint64_t tag = 0;
    std::uint64_t tag2 = 0;
  };
  std::map<Addr, Line> lines;

  bool empty() const { return lines.empty(); }
  bool contains(Addr addr) const { return lines.count(addr) != 0; }
};

/// Capture the persisted state the attacker recorded (data + metadata +
/// aux regions; the reserved quarantine-map region is out of scope).
AdversarySnapshot snapshot_device(SecureMemoryBase& mem);

/// Apply one scenario's post-crash mutation against the device: replay
/// stale versions from the snapshot, forge or tear tracking lines. Must run
/// after crash() so ADR-resident structures have reached the device.
/// Returns false when the scenario found nothing to mutate (a no-op attack
/// — e.g. no line changed since the snapshot). `events`, if non-null,
/// receives a short log of what was mutated. Deterministic in plan.seed.
/// kDataReplay and kWearOut are runtime scenarios and always return false
/// here.
bool apply_adversary_post_crash(SecureMemoryBase& mem, Scheme scheme,
                                const AdversaryPlan& plan,
                                const AdversarySnapshot& snap, std::string* events);

/// Apply the runtime data-replay mutation: revert one data line that
/// changed since the snapshot (+ its tag sidecars). Returns false when no
/// data line has changed yet.
bool apply_data_replay(SecureMemoryBase& mem, const AdversaryPlan& plan,
                       const AdversarySnapshot& snap, std::string* events);

struct AttackOutcome {
  AdversaryScenario scenario = AdversaryScenario::kNodeRollback;
  TrialOutcome trial;  // trial.cls stays kNone: the crash itself is clean
};

struct AttackCampaignOptions {
  std::uint64_t trials = 100;
  std::uint64_t seed = 42;
  unsigned jobs = 1;
  std::vector<SchemeSpec> schemes;            // empty = attack_schemes()
  std::vector<AdversaryScenario> scenarios;   // empty = all
  FaultTrialOptions workload;
  std::optional<std::uint64_t> only_trial;    // reproduce one trial index
};

/// One (scheme, scenario) cell of the verdict matrix, with the detection
/// telemetry the verdicts alone do not carry.
struct AttackCell {
  std::uint64_t detected = 0;
  std::uint64_t recovered = 0;
  std::uint64_t salvaged = 0;
  std::uint64_t silent = 0;
  std::uint64_t injected = 0;  // trials whose mutation actually landed
  std::vector<std::uint64_t> latencies;     // per detected trial, sorted
  std::vector<std::uint64_t> blast_lines;   // per trial, sorted
  std::vector<std::uint64_t> blast_blocks;  // per trial, sorted
  std::map<std::string, std::uint64_t> layers;  // detect_layer histogram

  std::uint64_t total() const { return detected + recovered + salvaged + silent; }
};

/// p-th percentile (0-100) of a sorted sample; 0 for an empty one.
std::uint64_t percentile(const std::vector<std::uint64_t>& sorted, unsigned p);

struct AttackCampaignResult {
  AttackCampaignOptions options;  // schemes/scenarios resolved to defaults
  std::vector<AttackOutcome> outcomes;  // trial-major, scheme-minor order

  AttackCell cell(const std::string& scheme, AdversaryScenario s) const;
  std::uint64_t silent_total() const;
  std::vector<const AttackOutcome*> silent_outcomes() const;

  void print(bool verbose = false, std::FILE* out = stdout) const;

  /// Machine-readable record (BENCH_attack.json): options, per-cell verdict
  /// counts, detection-latency and blast-radius percentiles, layer
  /// histogram, silent trial details.
  std::string to_json() const;
};

/// Default scheme set for attack campaigns: the recoverable schemes plus
/// write-back (which must report itself unrecoverable, never serve a
/// replayed image silently).
std::vector<SchemeSpec> attack_schemes();

/// Run one (scheme, scenario, trial) cell. Reuses the fault-campaign trial
/// anatomy (same workload derivation) with the scenario's hooks threaded
/// through and strict-window auditing.
AttackOutcome run_attack_trial(const SchemeSpec& spec, AdversaryScenario scenario,
                               std::uint64_t campaign_seed, std::uint64_t trial,
                               const FaultTrialOptions& workload);

/// Run the whole matrix. Trial t draws scenarios[t % size]; jobs > 1 fans
/// cells across a thread pool with results bit-identical to sequential.
/// Throws std::invalid_argument for an empty campaign.
AttackCampaignResult run_attack_campaign(const AttackCampaignOptions& opts);

}  // namespace steins

#include "fault/campaign.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace steins {

namespace {

/// Deterministic per-(block, version) plaintext so an audit can tell from
/// the content alone WHICH committed version a block rolled back to.
Block trial_pattern_block(Addr addr, std::uint64_t version) {
  Block b = zero_block();
  std::memcpy(b.data(), &addr, 8);
  std::memcpy(b.data() + 8, &version, 8);
  const std::uint64_t mix = version * 0x9e3779b97f4a7c15ULL ^ addr;
  std::memcpy(b.data() + 16, &mix, 8);
  return b;
}

std::uint64_t pattern_version(const Block& b) {
  std::uint64_t v = 0;
  std::memcpy(&v, b.data() + 8, 8);
  return v;
}

TrialOutcome detected(TrialOutcome out, std::string detail) {
  out.verdict = FaultVerdict::kDetected;
  out.detail = std::move(detail);
  return out;
}

TrialOutcome silent(TrialOutcome out, std::string detail) {
  out.verdict = FaultVerdict::kSilentCorruption;
  out.detail = std::move(detail);
  return out;
}

}  // namespace

const char* fault_verdict_name(FaultVerdict v) {
  switch (v) {
    case FaultVerdict::kDetected:
      return "detected";
    case FaultVerdict::kRecovered:
      return "recovered";
    case FaultVerdict::kSalvaged:
      return "salvaged";
    case FaultVerdict::kSilentCorruption:
      return "silent-corruption";
  }
  return "?";
}

std::vector<SchemeSpec> campaign_schemes(CounterMode mode) {
  if (mode == CounterMode::kSplit) {
    return {{Scheme::kSteins, CounterMode::kSplit, scheme_name(Scheme::kSteins, mode)}};
  }
  return {
      {Scheme::kAnubis, mode, scheme_name(Scheme::kAnubis, mode)},
      {Scheme::kStar, mode, scheme_name(Scheme::kStar, mode)},
      {Scheme::kScue, mode, scheme_name(Scheme::kScue, mode)},
      {Scheme::kSteins, mode, scheme_name(Scheme::kSteins, mode)},
  };
}

TrialOutcome run_fault_trial(const SchemeSpec& spec, FaultClass cls,
                             std::uint64_t campaign_seed, std::uint64_t trial,
                             const FaultTrialOptions& workload) {
  TrialOutcome out;
  out.trial = trial;
  out.cls = cls;
  out.scheme = spec.label;

  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = workload.capacity_mb << 20;
  cfg.secure.metadata_cache.size_bytes = workload.mcache_kb * 1024;
  cfg.counter_mode = spec.mode;
  cfg.crypto = CryptoProfile::kFast;
  cfg.secure.ft = workload.ft;
  std::unique_ptr<SecureMemory> mem = make_scheme(spec.scheme, cfg);

  // The workload stream is seeded independently of the fault plan so the
  // same trial index replays the same trace under every fault class.
  SplitMix64 sm(campaign_seed ^ (trial * 0x2545f4914f6cdd1dULL));
  Xoshiro256 rng(sm.next());

  std::map<Addr, std::uint64_t> versions;  // latest committed-or-posted version
  Cycle now = 0;

  const auto pick_addr = [&]() -> Addr {
    return rng.below(workload.footprint_blocks) * kBlockSize;
  };
  const auto do_write = [&](Addr addr) {
    const std::uint64_t v = ++versions[addr];
    now = mem->write_block(addr, trial_pattern_block(addr, v), now);
  };
  // Pre-crash reads must always verify: no fault has been injected yet, so
  // a mismatch here is a harness or scheme bug, not a fault outcome.
  const auto do_read_check = [&](Addr addr) -> bool {
    const auto it = versions.find(addr);
    Block got;
    now = mem->read_block(addr, now, &got);
    const Block want =
        it == versions.end() ? zero_block() : trial_pattern_block(addr, it->second);
    return got == want;
  };

  // Phase 1: mixed traffic, then a full metadata flush — the checkpoint.
  // Everything written before it is durably committed; recovery may not
  // roll any block back past its checkpoint version.
  for (std::uint64_t i = 0; i < workload.ops; ++i) {
    const Addr addr = pick_addr();
    if (rng.chance(0.75)) {
      do_write(addr);
    } else if (!do_read_check(addr)) {
      return silent(std::move(out), "pre-checkpoint read mismatch");
    }
  }
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());
  base->flush_all_metadata();
  const std::map<Addr, std::uint64_t> checkpoint = versions;

  // Phase 2: a dirty burst that the crash will interrupt — cached metadata,
  // queued persists, and ADR-resident tracking state all in flight.
  for (std::uint64_t i = 0; i < workload.ops / 2; ++i) {
    const Addr addr = pick_addr();
    if (rng.chance(0.9)) {
      do_write(addr);
    } else if (!do_read_check(addr)) {
      return silent(std::move(out), "pre-crash read mismatch");
    }
  }

  // Crash with the fault plan armed; post-crash media faults follow.
  const FaultPlan plan = FaultPlan::derive(cls, campaign_seed, trial);
  FaultInjector injector(plan);
  mem->set_fault_injector(&injector);
  mem->crash();
  injector.apply_post_crash(*mem);
  mem->set_fault_injector(nullptr);
  out.faults_injected = injector.events().size();
  out.events = injector.event_summary();

  RecoveryResult r;
  try {
    r = mem->recover();
  } catch (const IntegrityViolation& e) {
    return detected(std::move(out), std::string("recovery raised: ") + e.what());
  } catch (const std::exception& e) {
    return silent(std::move(out), std::string("recovery crashed: ") + e.what());
  }
  if (!r.status.ok()) {
    // The salvage contract: recovery never aborts — an error Status smuggled
    // out of it is an internal failure, scored as the bug it is.
    return silent(std::move(out), "recovery internal error: " + r.status.to_string());
  }
  if (!r.supported) {
    return detected(std::move(out), "scheme reports recovery unsupported");
  }
  if (r.attack_detected) {
    return detected(std::move(out), "recovery flagged: " + r.attack_detail);
  }
  bool degraded = r.degraded();
  std::uint64_t unavailable_reads = 0;

  // Full audit: every block the workload ever wrote must read back as an
  // authentic committed version in [checkpoint, latest]. Acceptance of an
  // in-window version is what makes dropped-but-undetected persists legal:
  // a posted write the crash destroyed was never acknowledged as durable.
  // A *typed* unavailable error (quarantined/uncorrectable) is the legal
  // degraded outcome for a block recovery wrote off — refusing service is
  // the opposite of serving wrong plaintext.
  now = 0;
  for (const auto& [addr, latest] : versions) {
    Block got;
    try {
      now = mem->read_block(addr, now, &got);
    } catch (const IntegrityViolation& e) {
      return detected(std::move(out), std::string("post-recovery read raised: ") + e.what());
    } catch (const StatusError& e) {
      if (is_unavailable(e.code())) {
        degraded = true;
        ++unavailable_reads;
        continue;
      }
      return silent(std::move(out), std::string("post-recovery read crashed: ") + e.what());
    } catch (const std::exception& e) {
      return silent(std::move(out), std::string("post-recovery read crashed: ") + e.what());
    }
    const auto cp_it = checkpoint.find(addr);
    const std::uint64_t cp = cp_it == checkpoint.end() ? 0 : cp_it->second;
    if (got == zero_block()) {
      if (cp != 0) {
        return silent(std::move(out), "block " + std::to_string(addr / kBlockSize) +
                                          " rolled back to zero past checkpoint v" +
                                          std::to_string(cp));
      }
      continue;
    }
    const std::uint64_t v = pattern_version(got);
    if (v < std::max<std::uint64_t>(cp, 1) || v > latest ||
        got != trial_pattern_block(addr, v)) {
      return silent(std::move(out), "block " + std::to_string(addr / kBlockSize) +
                                        " read unauthentic state (decoded v" +
                                        std::to_string(v) + ", window [" +
                                        std::to_string(cp) + ", " + std::to_string(latest) +
                                        "])");
    }
  }

  // Functional epilogue: the recovered tree must accept and verify fresh
  // writes (a recovery that leaves the SIT wedged is not a recovery).
  // Quarantined targets may refuse with a typed error; that is degraded
  // service, not a wedge.
  std::uint64_t probes = 0;
  for (const auto& [addr, latest] : versions) {
    (void)latest;
    if (++probes > 4) break;
    try {
      do_write(addr);
      Block got;
      now = mem->read_block(addr, now, &got);
      if (got != trial_pattern_block(addr, versions[addr])) {
        return silent(std::move(out), "post-recovery write/read mismatch at block " +
                                          std::to_string(addr / kBlockSize));
      }
    } catch (const IntegrityViolation& e) {
      return detected(std::move(out),
                      std::string("post-recovery write path raised: ") + e.what());
    } catch (const StatusError& e) {
      if (is_unavailable(e.code())) {
        degraded = true;
        continue;
      }
      return silent(std::move(out),
                    std::string("post-recovery write path crashed: ") + e.what());
    } catch (const std::exception& e) {
      return silent(std::move(out),
                    std::string("post-recovery write path crashed: ") + e.what());
    }
  }

  if (degraded) {
    out.verdict = FaultVerdict::kSalvaged;
    out.detail = r.summary();
    if (unavailable_reads > 0) {
      out.detail += "; " + std::to_string(unavailable_reads) + " audit reads unavailable (typed)";
    }
    return out;
  }
  out.verdict = FaultVerdict::kRecovered;
  return out;
}

CampaignResult run_fault_campaign(const CampaignOptions& opts) {
  if (opts.trials == 0 && !opts.only_trial.has_value()) {
    throw std::invalid_argument(
        "fault campaign with 0 trials would report vacuous success; "
        "pass --trials >= 1 or reproduce one index with --trial");
  }
  CampaignResult result;
  result.options = opts;
  if (result.options.schemes.empty()) {
    result.options.schemes = campaign_schemes(CounterMode::kGeneral);
  }
  if (result.options.classes.empty()) result.options.classes = all_fault_classes();
  const auto& schemes = result.options.schemes;
  const auto& classes = result.options.classes;

  std::vector<std::uint64_t> trials;
  if (result.options.only_trial.has_value()) {
    trials.push_back(*result.options.only_trial);
  } else {
    trials.resize(result.options.trials);
    for (std::uint64_t t = 0; t < result.options.trials; ++t) trials[t] = t;
  }

  // Pre-assigned result slots: each cell is a pure function of its indices,
  // so the outcome vector is bit-identical for any job count.
  result.outcomes.resize(trials.size() * schemes.size());
  const auto run_cell = [&](std::size_t idx) {
    const std::uint64_t trial = trials[idx / schemes.size()];
    const SchemeSpec& spec = schemes[idx % schemes.size()];
    const FaultClass cls = classes[trial % classes.size()];
    result.outcomes[idx] =
        run_fault_trial(spec, cls, result.options.seed, trial, result.options.workload);
  };

  if (result.options.jobs <= 1) {
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) run_cell(i);
  } else {
    ThreadPool pool(result.options.jobs);
    pool.for_each_index(result.outcomes.size(), run_cell);
  }
  return result;
}

CampaignCell CampaignResult::cell(const std::string& scheme, FaultClass cls) const {
  CampaignCell c;
  for (const TrialOutcome& o : outcomes) {
    if (o.scheme != scheme || o.cls != cls) continue;
    switch (o.verdict) {
      case FaultVerdict::kDetected:
        ++c.detected;
        break;
      case FaultVerdict::kRecovered:
        ++c.recovered;
        break;
      case FaultVerdict::kSalvaged:
        ++c.salvaged;
        break;
      case FaultVerdict::kSilentCorruption:
        ++c.silent;
        break;
    }
  }
  return c;
}

std::uint64_t CampaignResult::silent_total() const {
  std::uint64_t n = 0;
  for (const TrialOutcome& o : outcomes) {
    if (o.verdict == FaultVerdict::kSilentCorruption) ++n;
  }
  return n;
}

std::uint64_t CampaignResult::salvaged_total() const {
  std::uint64_t n = 0;
  for (const TrialOutcome& o : outcomes) {
    if (o.verdict == FaultVerdict::kSalvaged) ++n;
  }
  return n;
}

std::vector<const TrialOutcome*> CampaignResult::silent_outcomes() const {
  std::vector<const TrialOutcome*> out;
  for (const TrialOutcome& o : outcomes) {
    if (o.verdict == FaultVerdict::kSilentCorruption) out.push_back(&o);
  }
  return out;
}

void CampaignResult::print(bool verbose, std::FILE* out) const {
  std::fprintf(out,
               "verdict matrix: detected/recovered/salvaged/SILENT per (scheme, fault class)\n");
  int label_w = 10;
  for (const SchemeSpec& s : options.schemes) {
    label_w = std::max(label_w, static_cast<int>(s.label.size()) + 2);
  }
  std::fprintf(out, "%-*s", label_w, "");
  for (const FaultClass cls : options.classes) {
    std::fprintf(out, " %17s", fault_class_name(cls));
  }
  std::fprintf(out, "\n");
  for (const SchemeSpec& s : options.schemes) {
    std::fprintf(out, "%-*s", label_w, s.label.c_str());
    for (const FaultClass cls : options.classes) {
      const CampaignCell c = cell(s.label, cls);
      char buf[48];
      std::snprintf(buf, sizeof buf, "%llu/%llu/%llu/%llu",
                    static_cast<unsigned long long>(c.detected),
                    static_cast<unsigned long long>(c.recovered),
                    static_cast<unsigned long long>(c.salvaged),
                    static_cast<unsigned long long>(c.silent));
      std::fprintf(out, " %17s", buf);
    }
    std::fprintf(out, "\n");
  }
  const std::uint64_t silent = silent_total();
  std::fprintf(out,
               "\ntrials: %llu x %zu schemes  salvaged: %llu  silent-corruption: %llu\n",
               static_cast<unsigned long long>(
                   options.only_trial.has_value() ? 1 : options.trials),
               options.schemes.size(), static_cast<unsigned long long>(salvaged_total()),
               static_cast<unsigned long long>(silent));
  if (silent > 0 || verbose) {
    for (const TrialOutcome* o : silent_outcomes()) {
      std::fprintf(out, "SILENT trial %llu scheme %s class %s: %s\n  faults: %s\n",
                   static_cast<unsigned long long>(o->trial), o->scheme.c_str(),
                   fault_class_name(o->cls), o->detail.c_str(), o->events.c_str());
    }
  }
  if (verbose) {
    for (const TrialOutcome& o : outcomes) {
      std::fprintf(out, "trial %llu %s %s -> %s%s%s%s%s\n",
                   static_cast<unsigned long long>(o.trial), o.scheme.c_str(),
                   fault_class_name(o.cls), fault_verdict_name(o.verdict),
                   o.detail.empty() ? "" : " (", o.detail.c_str(),
                   o.detail.empty() ? "" : ")",
                   o.events.empty() ? "" : (" faults: " + o.events).c_str());
    }
  }
}

std::string CampaignResult::to_json() const {
  std::ostringstream os;
  os << "{\"trials\": " << (options.only_trial.has_value() ? 1 : options.trials)
     << ", \"seed\": " << options.seed << ", \"jobs\": " << options.jobs;
  if (options.only_trial.has_value()) os << ", \"only_trial\": " << *options.only_trial;
  os << ",\n \"schemes\": [";
  for (std::size_t i = 0; i < options.schemes.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(options.schemes[i].label) << '"';
  }
  os << "],\n \"classes\": [";
  for (std::size_t i = 0; i < options.classes.size(); ++i) {
    os << (i ? ", " : "") << '"' << fault_class_name(options.classes[i]) << '"';
  }
  os << "],\n \"matrix\": [";
  bool first = true;
  for (const SchemeSpec& s : options.schemes) {
    for (const FaultClass cls : options.classes) {
      const CampaignCell c = cell(s.label, cls);
      if (c.total() == 0) continue;
      os << (first ? "" : ",") << "\n  {\"scheme\": \"" << json_escape(s.label)
         << "\", \"class\": \"" << fault_class_name(cls) << "\", \"detected\": " << c.detected
         << ", \"recovered\": " << c.recovered << ", \"salvaged\": " << c.salvaged
         << ", \"silent_corruption\": " << c.silent << "}";
      first = false;
    }
  }
  os << "\n ],\n \"salvaged_total\": " << salvaged_total()
     << ",\n \"silent_total\": " << silent_total() << ",\n \"silent_trials\": [";
  const auto silents = silent_outcomes();
  for (std::size_t i = 0; i < silents.size(); ++i) {
    const TrialOutcome* o = silents[i];
    os << (i ? "," : "") << "\n  {\"trial\": " << o->trial << ", \"scheme\": \""
       << json_escape(o->scheme) << "\", \"class\": \"" << fault_class_name(o->cls)
       << "\", \"detail\": \"" << json_escape(o->detail) << "\", \"events\": \""
       << json_escape(o->events) << "\"}";
  }
  os << "\n ]}\n";
  return os.str();
}

}  // namespace steins

#include "fault/campaign.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <sstream>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"

namespace steins {

namespace {

/// Deterministic per-(block, version) plaintext so an audit can tell from
/// the content alone WHICH committed version a block rolled back to.
Block trial_pattern_block(Addr addr, std::uint64_t version) {
  Block b = zero_block();
  std::memcpy(b.data(), &addr, 8);
  std::memcpy(b.data() + 8, &version, 8);
  const std::uint64_t mix = version * 0x9e3779b97f4a7c15ULL ^ addr;
  std::memcpy(b.data() + 16, &mix, 8);
  return b;
}

std::uint64_t pattern_version(const Block& b) {
  std::uint64_t v = 0;
  std::memcpy(&v, b.data() + 8, 8);
  return v;
}

}  // namespace

std::string classify_detect_layer(const std::string& detail) {
  const auto has = [&](const char* needle) {
    return detail.find(needle) != std::string::npos;
  };
  if (has("LInc") || has("cache-tree") || has("root mismatch") || has("replay")) {
    return "recovery-linc";
  }
  if (has("HMAC") || has("hmac") || has("tamper") || has("parent verification") ||
      has("matched no counter")) {
    return "recovery-hmac";
  }
  return "recovery";
}

const char* fault_verdict_name(FaultVerdict v) {
  switch (v) {
    case FaultVerdict::kDetected:
      return "detected";
    case FaultVerdict::kRecovered:
      return "recovered";
    case FaultVerdict::kSalvaged:
      return "salvaged";
    case FaultVerdict::kSilentCorruption:
      return "silent-corruption";
    case FaultVerdict::kRecoveredAfterRetry:
      return "recovered-after-retry";
    case FaultVerdict::kRecoveryCrashUnrecoverable:
      return "recovery-crash-unrecoverable";
  }
  return "?";
}

std::vector<SchemeSpec> campaign_schemes(CounterMode mode) {
  if (mode == CounterMode::kSplit) {
    return {{Scheme::kSteins, CounterMode::kSplit, scheme_name(Scheme::kSteins, mode)}};
  }
  return {
      {Scheme::kAnubis, mode, scheme_name(Scheme::kAnubis, mode)},
      {Scheme::kStar, mode, scheme_name(Scheme::kStar, mode)},
      {Scheme::kScue, mode, scheme_name(Scheme::kScue, mode)},
      {Scheme::kSteins, mode, scheme_name(Scheme::kSteins, mode)},
  };
}

TrialOutcome run_fault_trial(const SchemeSpec& spec, FaultClass cls,
                             std::uint64_t campaign_seed, std::uint64_t trial,
                             const FaultTrialOptions& workload) {
  return run_fault_trial_hooked(spec, cls, campaign_seed, trial, workload, nullptr);
}

TrialOutcome run_fault_trial_hooked(const SchemeSpec& spec, FaultClass cls,
                                    std::uint64_t campaign_seed, std::uint64_t trial,
                                    const FaultTrialOptions& workload,
                                    const TrialHooks* hooks) {
  TrialOutcome out;
  out.trial = trial;
  out.cls = cls;
  out.scheme = spec.label;

  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = workload.capacity_mb << 20;
  cfg.secure.metadata_cache.size_bytes = workload.mcache_kb * 1024;
  cfg.counter_mode = spec.mode;
  cfg.crypto = CryptoProfile::kFast;
  cfg.secure.ft = workload.ft;
  cfg.nvm.endurance_mean_writes = workload.endurance_mean_writes;
  cfg.nvm.endurance_sigma_writes = workload.endurance_sigma_writes;
  cfg.nvm.wear_seed = campaign_seed ^ (trial * 0x9e3779b97f4a7c15ULL) ^ 0x77ea7ULL;
  if (workload.remap_pool_lines.has_value()) {
    cfg.nvm.remap_pool_lines = *workload.remap_pool_lines;
  }
  std::unique_ptr<SecureMemory> mem = make_scheme(spec.scheme, cfg);
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());

  // The workload stream is seeded independently of the fault plan so the
  // same trial index replays the same trace under every fault class.
  SplitMix64 sm(campaign_seed ^ (trial * 0x2545f4914f6cdd1dULL));
  Xoshiro256 rng(sm.next());

  std::map<Addr, std::uint64_t> versions;  // latest committed-or-posted version
  Cycle now = 0;

  // Detection-latency clock: demand accesses since the injection point.
  std::uint64_t accesses = 0;
  std::optional<std::uint64_t> injected_at;
  const auto latency = [&]() -> std::uint64_t {
    return injected_at.has_value() ? accesses - *injected_at : 0;
  };
  const auto detected = [&](std::string detail, std::string layer) {
    out.verdict = FaultVerdict::kDetected;
    out.detail = std::move(detail);
    out.detect_layer = std::move(layer);
    out.detect_latency = latency();
  };
  const auto silent = [&](std::string detail) {
    out.verdict = FaultVerdict::kSilentCorruption;
    out.detail = std::move(detail);
  };
  // Blast radius after the trial settled (whatever the verdict): retired
  // lines, quarantined subtree ranges, and resident data blocks a read
  // would now refuse.
  const auto fill_blast = [&]() {
    const QuarantineMap& qm = base->quarantine();
    out.blast_lines = qm.line_count();
    out.blast_subtrees = qm.range_count();
    if (!qm.empty()) {
      for (const Addr a : base->device().resident_blocks(0, cfg.nvm.capacity_bytes)) {
        if (qm.read_blocked(a)) ++out.blast_blocks;
      }
    }
  };

  const auto pick_addr = [&]() -> Addr {
    return rng.below(workload.footprint_blocks) * kBlockSize;
  };
  const auto do_write = [&](Addr addr) {
    const std::uint64_t v = versions[addr] + 1;
    now = mem->write_block(addr, trial_pattern_block(addr, v), now);
    versions[addr] = v;  // committed only once the write was accepted
    ++accesses;
  };
  // Pre-crash reads must always verify: until something is injected, a
  // mismatch here is a harness or scheme bug, not a fault outcome.
  const auto do_read_check = [&](Addr addr) -> bool {
    const auto it = versions.find(addr);
    Block got;
    now = mem->read_block(addr, now, &got);
    ++accesses;
    const Block want =
        it == versions.end() ? zero_block() : trial_pattern_block(addr, it->second);
    return got == want;
  };

  // Runtime phases tolerate *typed* unavailable errors (wear retirements,
  // scrub quarantines): degraded service during the run is a legal outcome,
  // not a harness crash. Integrity violations before anything was injected
  // stay fatal (scored silent below); after injection they are detection.
  bool runtime_degraded = false;
  std::uint64_t scrub_detected_base = 0;
  enum class OpResult { kOk, kMismatch, kDetected, kUnavailable };
  const auto run_op = [&](Addr addr, bool write) -> OpResult {
    try {
      if (write) {
        do_write(addr);
        return OpResult::kOk;
      }
      return do_read_check(addr) ? OpResult::kOk : OpResult::kMismatch;
    } catch (const IntegrityViolation& e) {
      if (injected_at.has_value()) {
        detected(std::string("runtime read raised: ") + e.what(), "read");
        return OpResult::kDetected;
      }
      throw;  // no fault armed yet: a genuine bug, let the caller see it
    } catch (const StatusError& e) {
      if (!is_unavailable(e.code())) throw;
      runtime_degraded = true;
      return OpResult::kUnavailable;
    }
  };
  // After each armed access: did the patrol scrub flag the mutation?
  const auto scrub_fired = [&]() -> bool {
    return injected_at.has_value() &&
           base->ft_stats().scrub_detected > scrub_detected_base;
  };

  const bool done = [&]() -> bool {  // true = verdict already set
    // Phase 1: mixed traffic, then a full metadata flush — the checkpoint.
    // Everything written before it is durably committed; recovery may not
    // roll any block back past its checkpoint version.
    for (std::uint64_t i = 0; i < workload.ops; ++i) {
      if (i == workload.ops / 2 && hooks != nullptr && hooks->mid_workload) {
        base->flush_all_metadata();  // the adversary's recording point
        hooks->mid_workload(*base);
      }
      const Addr addr = pick_addr();
      const OpResult res = run_op(addr, rng.chance(0.75));
      if (res == OpResult::kMismatch) {
        silent("pre-checkpoint read mismatch");
        return true;
      }
      if (res == OpResult::kDetected) return true;
    }
    base->flush_all_metadata();
    const std::map<Addr, std::uint64_t> checkpoint_flush = versions;
    if (hooks != nullptr && hooks->after_checkpoint) hooks->after_checkpoint(*base);

    // Phase 2: a dirty burst that the crash will interrupt — cached
    // metadata, queued persists, and ADR-resident tracking state all in
    // flight. Runtime adversary mutations (mid_burst) land here; a patrol
    // scrub epoch or a demand read may catch them before the crash does.
    for (std::uint64_t i = 0; i < workload.ops / 2; ++i) {
      if (hooks != nullptr && hooks->mid_burst && !injected_at.has_value()) {
        scrub_detected_base = base->ft_stats().scrub_detected;
        if (hooks->mid_burst(*base, i)) {
          injected_at = accesses;
          out.faults_injected = 1;
        }
      }
      const Addr addr = pick_addr();
      const OpResult res = run_op(addr, rng.chance(0.9));
      if (res == OpResult::kMismatch) {
        silent("pre-crash read mismatch");
        return true;
      }
      if (res == OpResult::kDetected) return true;
      if (scrub_fired()) {
        detected("patrol scrub flagged the mutated line", "scrub");
        return true;
      }
    }

    // Crash with the fault plan armed; post-crash media faults follow, then
    // any adversarial post-crash mutation (replay / forgery / tearing).
    const FaultPlan plan = FaultPlan::derive(cls, campaign_seed, trial);
    FaultInjector injector(plan);
    mem->set_fault_injector(&injector);
    mem->crash();
    injector.apply_post_crash(*mem);
    // The injector stays installed through recovery: a nested recovery
    // crash, when armed, fires at the chosen persist boundary inside it.
    out.faults_injected += injector.events().size();
    out.events = injector.event_summary();
    if (hooks != nullptr && hooks->post_crash) {
      std::string events;
      if (hooks->post_crash(*base, &events)) {
        if (!injected_at.has_value()) injected_at = accesses;
        ++out.faults_injected;
        if (!events.empty()) {
          out.events += out.events.empty() ? events : "; " + events;
        }
      }
    }

    // The audit window: [checkpoint, latest] for fault campaigns (a posted
    // write the crash destroyed was never acknowledged as durable), exactly
    // latest under hooks->strict_window (the adversary trials drain the
    // queue intact, so a rollback to any older version must be caught).
    const std::map<Addr, std::uint64_t>& checkpoint =
        (hooks != nullptr && hooks->strict_window) ? versions : checkpoint_flush;

    if (workload.recovery_crash_boundary != 0) {
      injector.arm_recovery_crash(workload.recovery_crash_boundary,
                                  workload.recovery_crash_rearm);
    }
    RecoveryResult r;
    try {
      r = recover_with_retry(*mem, &injector, workload.retry_policy);
    } catch (const IntegrityViolation& e) {
      mem->set_fault_injector(nullptr);
      detected(std::string("recovery raised: ") + e.what(), "recovery");
      return true;
    } catch (const std::exception& e) {
      mem->set_fault_injector(nullptr);
      silent(std::string("recovery crashed: ") + e.what());
      return true;
    }
    mem->set_fault_injector(nullptr);
    out.recovery_attempts = r.attempt_count();
    out.recovery_seconds = r.seconds;
    out.resume_cursor = r.resume_cursor;
    if (r.recovery_gave_up) {
      // The bounded retry budget ran out with the machine still down: an
      // availability failure, reported as its own verdict.
      out.verdict = FaultVerdict::kRecoveryCrashUnrecoverable;
      out.detail = r.status.message();
      return true;
    }
    if (!r.status.ok()) {
      // The salvage contract: recovery never aborts — an error Status
      // smuggled out of it is an internal failure, scored as the bug it is.
      silent("recovery internal error: " + r.status.to_string());
      return true;
    }
    if (!r.supported) {
      detected("scheme reports recovery unsupported", "unsupported");
      return true;
    }
    if (r.attack_detected) {
      detected("recovery flagged: " + r.attack_detail,
               classify_detect_layer(r.attack_detail));
      return true;
    }
    bool degraded = r.degraded() || runtime_degraded;
    std::uint64_t unavailable_reads = 0;

    // Full audit: every block the workload ever wrote must read back as an
    // authentic committed version in [checkpoint, latest]. A *typed*
    // unavailable error (quarantined/uncorrectable) is the legal degraded
    // outcome for a block recovery wrote off — refusing service is the
    // opposite of serving wrong plaintext.
    now = 0;
    for (const auto& [addr, latest] : versions) {
      Block got;
      try {
        now = mem->read_block(addr, now, &got);
        ++accesses;
      } catch (const IntegrityViolation& e) {
        detected(std::string("post-recovery read raised: ") + e.what(), "read");
        return true;
      } catch (const StatusError& e) {
        if (is_unavailable(e.code())) {
          degraded = true;
          ++unavailable_reads;
          continue;
        }
        silent(std::string("post-recovery read crashed: ") + e.what());
        return true;
      } catch (const std::exception& e) {
        silent(std::string("post-recovery read crashed: ") + e.what());
        return true;
      }
      const auto cp_it = checkpoint.find(addr);
      const std::uint64_t cp = cp_it == checkpoint.end() ? 0 : cp_it->second;
      if (got == zero_block()) {
        if (cp != 0) {
          silent("block " + std::to_string(addr / kBlockSize) +
                 " rolled back to zero past checkpoint v" + std::to_string(cp));
          return true;
        }
        continue;
      }
      const std::uint64_t v = pattern_version(got);
      if (v < std::max<std::uint64_t>(cp, 1) || v > latest ||
          got != trial_pattern_block(addr, v)) {
        silent("block " + std::to_string(addr / kBlockSize) +
               " read unauthentic state (decoded v" + std::to_string(v) + ", window [" +
               std::to_string(cp) + ", " + std::to_string(latest) + "])");
        return true;
      }
    }

    // Functional epilogue: the recovered tree must accept and verify fresh
    // writes (a recovery that leaves the SIT wedged is not a recovery).
    // Quarantined targets may refuse with a typed error; that is degraded
    // service, not a wedge.
    std::uint64_t probes = 0;
    for (const auto& [addr, latest] : versions) {
      (void)latest;
      if (++probes > 4) break;
      try {
        do_write(addr);
        Block got;
        now = mem->read_block(addr, now, &got);
        ++accesses;
        if (got != trial_pattern_block(addr, versions[addr])) {
          silent("post-recovery write/read mismatch at block " +
                 std::to_string(addr / kBlockSize));
          return true;
        }
      } catch (const IntegrityViolation& e) {
        detected(std::string("post-recovery write path raised: ") + e.what(), "read");
        return true;
      } catch (const StatusError& e) {
        if (is_unavailable(e.code())) {
          degraded = true;
          continue;
        }
        silent(std::string("post-recovery write path crashed: ") + e.what());
        return true;
      } catch (const std::exception& e) {
        silent(std::string("post-recovery write path crashed: ") + e.what());
        return true;
      }
    }

    if (degraded) {
      out.verdict = FaultVerdict::kSalvaged;
      out.detail = r.summary();
      if (unavailable_reads > 0) {
        out.detail +=
            "; " + std::to_string(unavailable_reads) + " audit reads unavailable (typed)";
      }
      return true;
    }
    if (out.recovery_attempts > 1) {
      out.verdict = FaultVerdict::kRecoveredAfterRetry;
      out.detail = "converged after " + std::to_string(out.recovery_attempts) +
                   " recovery attempts";
      return true;
    }
    out.verdict = FaultVerdict::kRecovered;
    return true;
  }();
  (void)done;

  fill_blast();
  return out;
}

MulticycleOutcome run_multicycle_trial(const SchemeSpec& spec, FaultClass cls,
                                       std::uint64_t campaign_seed, std::uint64_t trial,
                                       std::uint64_t cycles,
                                       const FaultTrialOptions& workload,
                                       const MulticycleHooks* hooks) {
  MulticycleOutcome out;
  out.trial = trial;
  out.scheme = spec.label;

  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = workload.capacity_mb << 20;
  cfg.secure.metadata_cache.size_bytes = workload.mcache_kb * 1024;
  cfg.counter_mode = spec.mode;
  cfg.crypto = CryptoProfile::kFast;
  cfg.secure.ft = workload.ft;
  std::unique_ptr<SecureMemory> mem = make_scheme(spec.scheme, cfg);
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());

  SplitMix64 sm(campaign_seed ^ (trial * 0x2545f4914f6cdd1dULL) ^ 0xC1C1E5ULL);
  Xoshiro256 rng(sm.next());
  std::map<Addr, std::uint64_t> versions;
  Cycle now = 0;
  std::string events;

  const auto pick_addr = [&]() -> Addr {
    return rng.below(workload.footprint_blocks) * kBlockSize;
  };
  const auto do_write = [&](Addr addr) {
    const std::uint64_t v = versions[addr] + 1;
    now = mem->write_block(addr, trial_pattern_block(addr, v), now);
    versions[addr] = v;
  };
  // Degraded service (typed unavailability from earlier cycles' quarantine)
  // is a legal steady state across cycles, never a trial abort.
  bool degraded = false;
  bool retried = false;
  const auto run_op = [&](Addr addr, bool write) -> bool {
    try {
      if (write) {
        do_write(addr);
      } else {
        Block got;
        now = mem->read_block(addr, now, &got);
      }
      return true;
    } catch (const StatusError& e) {
      if (!is_unavailable(e.code())) throw;
      degraded = true;
      return true;
    }
  };

  for (std::uint64_t c = 0; c < cycles; ++c) {
    out.cycles_run = c + 1;
    // Workload: mixed phase, checkpoint flush, dirty burst — same anatomy
    // as a single-cycle trial, continuing the same version history.
    try {
      for (std::uint64_t i = 0; i < workload.ops; ++i) run_op(pick_addr(), rng.chance(0.75));
      base->flush_all_metadata();
    } catch (const IntegrityViolation& e) {
      out.verdict = FaultVerdict::kSilentCorruption;
      out.detail = "cycle " + std::to_string(c) + " workload raised: " + e.what();
      return out;
    }
    const std::map<Addr, std::uint64_t> checkpoint = versions;
    try {
      for (std::uint64_t i = 0; i < workload.ops / 2; ++i) run_op(pick_addr(), rng.chance(0.9));
    } catch (const IntegrityViolation& e) {
      out.verdict = FaultVerdict::kSilentCorruption;
      out.detail = "cycle " + std::to_string(c) + " burst raised: " + e.what();
      return out;
    }

    // Crash under this cycle's fault plan; adversarial mutation follows.
    const FaultPlan plan = FaultPlan::derive(cls, campaign_seed, trial * 31 + c);
    FaultInjector injector(plan);
    mem->set_fault_injector(&injector);
    mem->crash();
    injector.apply_post_crash(*mem);
    out.faults_injected += injector.events().size();
    if (hooks != nullptr && hooks->post_crash) {
      std::string ev;
      if (hooks->post_crash(*base, c, &ev)) {
        ++out.faults_injected;
        if (!ev.empty()) events += (events.empty() ? "" : "; ") + ev;
      }
    }
    if (workload.recovery_crash_boundary != 0) {
      injector.arm_recovery_crash(workload.recovery_crash_boundary,
                                  workload.recovery_crash_rearm);
    }
    const RecoveryResult r = recover_with_retry(*mem, &injector, workload.retry_policy);
    mem->set_fault_injector(nullptr);
    out.attempts_per_cycle.push_back(r.attempt_count());
    out.recovery_seconds_per_cycle.push_back(r.seconds);
    if (r.attempt_count() > 1) retried = true;
    if (r.recovery_gave_up) {
      out.verdict = FaultVerdict::kRecoveryCrashUnrecoverable;
      out.detail = "cycle " + std::to_string(c) + ": " + r.status.message();
      return out;
    }
    if (r.attack_detected) {
      out.verdict = FaultVerdict::kDetected;
      out.detail = "cycle " + std::to_string(c) + " recovery flagged: " + r.attack_detail;
      if (!events.empty()) out.detail += " [" + events + "]";
      return out;
    }
    if (!r.status.ok()) {
      out.verdict = FaultVerdict::kSilentCorruption;
      out.detail = "cycle " + std::to_string(c) + " recovery internal error: " +
                   r.status.to_string();
      return out;
    }
    degraded = degraded || r.degraded();

    // Audit: every written block serves an authentic version from
    // [checkpoint, latest] (or refuses with a typed error when degraded).
    for (const auto& [addr, latest] : versions) {
      Block got;
      try {
        now = mem->read_block(addr, now, &got);
      } catch (const IntegrityViolation& e) {
        out.verdict = FaultVerdict::kDetected;
        out.detail = "cycle " + std::to_string(c) + " audit read raised: " + e.what();
        return out;
      } catch (const StatusError& e) {
        if (is_unavailable(e.code())) {
          degraded = true;
          continue;
        }
        out.verdict = FaultVerdict::kSilentCorruption;
        out.detail = "cycle " + std::to_string(c) + " audit read crashed: " + e.what();
        return out;
      }
      const auto cp_it = checkpoint.find(addr);
      const std::uint64_t cp = cp_it == checkpoint.end() ? 0 : cp_it->second;
      const std::uint64_t v = got == zero_block() ? 0 : pattern_version(got);
      const bool ok = (v == 0 && cp == 0) ||
                      (v >= std::max<std::uint64_t>(cp, 1) && v <= latest &&
                       got == trial_pattern_block(addr, v));
      if (!ok) {
        out.verdict = FaultVerdict::kSilentCorruption;
        out.detail = "cycle " + std::to_string(c) + " block " +
                     std::to_string(addr / kBlockSize) + " read unauthentic state (v" +
                     std::to_string(v) + ", window [" + std::to_string(cp) + ", " +
                     std::to_string(latest) + "])";
        return out;
      }
      // Pin the audited version: later cycles may not roll behind it.
      versions[addr] = std::max<std::uint64_t>(v, cp);
    }
  }

  out.verdict = degraded  ? FaultVerdict::kSalvaged
                : retried ? FaultVerdict::kRecoveredAfterRetry
                          : FaultVerdict::kRecovered;
  if (out.verdict == FaultVerdict::kRecoveredAfterRetry) {
    std::uint64_t total_attempts = 0;
    for (const std::uint64_t a : out.attempts_per_cycle) total_attempts += a;
    out.detail = std::to_string(out.cycles_run) + " cycles, " +
                 std::to_string(total_attempts) + " recovery attempts total";
  }
  return out;
}

CampaignResult run_fault_campaign(const CampaignOptions& opts) {
  if (opts.trials == 0 && !opts.only_trial.has_value()) {
    throw std::invalid_argument(
        "fault campaign with 0 trials would report vacuous success; "
        "pass --trials >= 1 or reproduce one index with --trial");
  }
  CampaignResult result;
  result.options = opts;
  if (result.options.schemes.empty()) {
    result.options.schemes = campaign_schemes(CounterMode::kGeneral);
  }
  if (result.options.classes.empty()) result.options.classes = all_fault_classes();
  const auto& schemes = result.options.schemes;
  const auto& classes = result.options.classes;

  std::vector<std::uint64_t> trials;
  if (result.options.only_trial.has_value()) {
    trials.push_back(*result.options.only_trial);
  } else {
    trials.resize(result.options.trials);
    for (std::uint64_t t = 0; t < result.options.trials; ++t) trials[t] = t;
  }

  // Pre-assigned result slots: each cell is a pure function of its indices,
  // so the outcome vector is bit-identical for any job count.
  result.outcomes.resize(trials.size() * schemes.size());
  const auto run_cell = [&](std::size_t idx) {
    const std::uint64_t trial = trials[idx / schemes.size()];
    const SchemeSpec& spec = schemes[idx % schemes.size()];
    const FaultClass cls = classes[trial % classes.size()];
    result.outcomes[idx] =
        run_fault_trial(spec, cls, result.options.seed, trial, result.options.workload);
  };

  if (result.options.jobs <= 1) {
    for (std::size_t i = 0; i < result.outcomes.size(); ++i) run_cell(i);
  } else {
    ThreadPool pool(result.options.jobs);
    pool.for_each_index(result.outcomes.size(), run_cell);
  }
  return result;
}

CampaignCell CampaignResult::cell(const std::string& scheme, FaultClass cls) const {
  CampaignCell c;
  for (const TrialOutcome& o : outcomes) {
    if (o.scheme != scheme || o.cls != cls) continue;
    switch (o.verdict) {
      case FaultVerdict::kDetected:
        ++c.detected;
        break;
      case FaultVerdict::kRecovered:
        ++c.recovered;
        break;
      case FaultVerdict::kSalvaged:
        ++c.salvaged;
        break;
      case FaultVerdict::kSilentCorruption:
        ++c.silent;
        break;
      case FaultVerdict::kRecoveredAfterRetry:
        ++c.recovered_retry;
        break;
      case FaultVerdict::kRecoveryCrashUnrecoverable:
        ++c.unrecoverable;
        break;
    }
  }
  return c;
}

std::uint64_t CampaignResult::silent_total() const {
  std::uint64_t n = 0;
  for (const TrialOutcome& o : outcomes) {
    if (o.verdict == FaultVerdict::kSilentCorruption) ++n;
  }
  return n;
}

std::uint64_t CampaignResult::salvaged_total() const {
  std::uint64_t n = 0;
  for (const TrialOutcome& o : outcomes) {
    if (o.verdict == FaultVerdict::kSalvaged) ++n;
  }
  return n;
}

std::uint64_t CampaignResult::retried_total() const {
  std::uint64_t n = 0;
  for (const TrialOutcome& o : outcomes) {
    if (o.verdict == FaultVerdict::kRecoveredAfterRetry) ++n;
  }
  return n;
}

std::uint64_t CampaignResult::unrecoverable_total() const {
  std::uint64_t n = 0;
  for (const TrialOutcome& o : outcomes) {
    if (o.verdict == FaultVerdict::kRecoveryCrashUnrecoverable) ++n;
  }
  return n;
}

std::vector<const TrialOutcome*> CampaignResult::silent_outcomes() const {
  std::vector<const TrialOutcome*> out;
  for (const TrialOutcome& o : outcomes) {
    if (o.verdict == FaultVerdict::kSilentCorruption) out.push_back(&o);
  }
  return out;
}

void CampaignResult::print(bool verbose, std::FILE* out) const {
  std::fprintf(out,
               "verdict matrix: detected/recovered/salvaged/SILENT per (scheme, fault class)\n");
  int label_w = 10;
  for (const SchemeSpec& s : options.schemes) {
    label_w = std::max(label_w, static_cast<int>(s.label.size()) + 2);
  }
  std::fprintf(out, "%-*s", label_w, "");
  for (const FaultClass cls : options.classes) {
    std::fprintf(out, " %17s", fault_class_name(cls));
  }
  std::fprintf(out, "\n");
  for (const SchemeSpec& s : options.schemes) {
    std::fprintf(out, "%-*s", label_w, s.label.c_str());
    for (const FaultClass cls : options.classes) {
      const CampaignCell c = cell(s.label, cls);
      char buf[48];
      // Retried-but-converged counts as recovered in the matrix; the
      // summary line below breaks the re-entry outcomes out separately.
      std::snprintf(buf, sizeof buf, "%llu/%llu/%llu/%llu",
                    static_cast<unsigned long long>(c.detected),
                    static_cast<unsigned long long>(c.recovered + c.recovered_retry),
                    static_cast<unsigned long long>(c.salvaged),
                    static_cast<unsigned long long>(c.silent + c.unrecoverable));
      std::fprintf(out, " %17s", buf);
    }
    std::fprintf(out, "\n");
  }
  const std::uint64_t silent = silent_total();
  const std::uint64_t unrecoverable = unrecoverable_total();
  std::fprintf(out,
               "\ntrials: %llu x %zu schemes  salvaged: %llu  silent-corruption: %llu\n",
               static_cast<unsigned long long>(
                   options.only_trial.has_value() ? 1 : options.trials),
               options.schemes.size(), static_cast<unsigned long long>(salvaged_total()),
               static_cast<unsigned long long>(silent));
  if (retried_total() > 0 || unrecoverable > 0) {
    std::fprintf(out, "re-entrant recovery: recovered-after-retry: %llu  unrecoverable: %llu\n",
                 static_cast<unsigned long long>(retried_total()),
                 static_cast<unsigned long long>(unrecoverable));
  }
  if (unrecoverable > 0) {
    for (const TrialOutcome& o : outcomes) {
      if (o.verdict != FaultVerdict::kRecoveryCrashUnrecoverable) continue;
      std::fprintf(out, "UNRECOVERABLE trial %llu scheme %s class %s: %s (%llu attempts)\n",
                   static_cast<unsigned long long>(o.trial), o.scheme.c_str(),
                   fault_class_name(o.cls), o.detail.c_str(),
                   static_cast<unsigned long long>(o.recovery_attempts));
    }
  }
  if (silent > 0 || verbose) {
    for (const TrialOutcome* o : silent_outcomes()) {
      std::fprintf(out, "SILENT trial %llu scheme %s class %s: %s\n  faults: %s\n",
                   static_cast<unsigned long long>(o->trial), o->scheme.c_str(),
                   fault_class_name(o->cls), o->detail.c_str(), o->events.c_str());
    }
  }
  if (verbose) {
    for (const TrialOutcome& o : outcomes) {
      std::fprintf(out, "trial %llu %s %s -> %s%s%s%s%s\n",
                   static_cast<unsigned long long>(o.trial), o.scheme.c_str(),
                   fault_class_name(o.cls), fault_verdict_name(o.verdict),
                   o.detail.empty() ? "" : " (", o.detail.c_str(),
                   o.detail.empty() ? "" : ")",
                   o.events.empty() ? "" : (" faults: " + o.events).c_str());
    }
  }
}

std::string CampaignResult::to_json() const {
  std::ostringstream os;
  os << "{\"trials\": " << (options.only_trial.has_value() ? 1 : options.trials)
     << ", \"seed\": " << options.seed << ", \"jobs\": " << options.jobs;
  if (options.only_trial.has_value()) os << ", \"only_trial\": " << *options.only_trial;
  os << ",\n \"schemes\": [";
  for (std::size_t i = 0; i < options.schemes.size(); ++i) {
    os << (i ? ", " : "") << '"' << json_escape(options.schemes[i].label) << '"';
  }
  os << "],\n \"classes\": [";
  for (std::size_t i = 0; i < options.classes.size(); ++i) {
    os << (i ? ", " : "") << '"' << fault_class_name(options.classes[i]) << '"';
  }
  os << "],\n \"matrix\": [";
  bool first = true;
  for (const SchemeSpec& s : options.schemes) {
    for (const FaultClass cls : options.classes) {
      const CampaignCell c = cell(s.label, cls);
      if (c.total() == 0) continue;
      os << (first ? "" : ",") << "\n  {\"scheme\": \"" << json_escape(s.label)
         << "\", \"class\": \"" << fault_class_name(cls) << "\", \"detected\": " << c.detected
         << ", \"recovered\": " << c.recovered << ", \"salvaged\": " << c.salvaged
         << ", \"silent_corruption\": " << c.silent
         << ", \"recovered_after_retry\": " << c.recovered_retry
         << ", \"unrecoverable\": " << c.unrecoverable << "}";
      first = false;
    }
  }
  os << "\n ],\n \"salvaged_total\": " << salvaged_total()
     << ",\n \"retried_total\": " << retried_total()
     << ",\n \"unrecoverable_total\": " << unrecoverable_total()
     << ",\n \"silent_total\": " << silent_total() << ",\n \"silent_trials\": [";
  const auto silents = silent_outcomes();
  for (std::size_t i = 0; i < silents.size(); ++i) {
    const TrialOutcome* o = silents[i];
    os << (i ? "," : "") << "\n  {\"trial\": " << o->trial << ", \"scheme\": \""
       << json_escape(o->scheme) << "\", \"class\": \"" << fault_class_name(o->cls)
       << "\", \"detail\": \"" << json_escape(o->detail) << "\", \"events\": \""
       << json_escape(o->events) << "\"}";
  }
  os << "\n ]}\n";
  return os.str();
}

}  // namespace steins

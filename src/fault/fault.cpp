#include "fault/fault.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <utility>

namespace steins {

const char* fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::kNone:
      return "none";
    case FaultClass::kTornWrite:
      return "torn-write";
    case FaultClass::kDroppedPersist:
      return "dropped-persist";
    case FaultClass::kReorderedPersist:
      return "reordered-persist";
    case FaultClass::kAdrLoss:
      return "adr-loss";
    case FaultClass::kBitFlipData:
      return "flip-data";
    case FaultClass::kBitFlipCounter:
      return "flip-counter";
    case FaultClass::kBitFlipNode:
      return "flip-node";
    case FaultClass::kBitFlipMac:
      return "flip-mac";
    case FaultClass::kBitFlipRecord:
      return "flip-record";
    case FaultClass::kCorrectableFlip:
      return "correctable-flip";
  }
  return "?";
}

std::optional<FaultClass> parse_fault_class(std::string_view name) {
  for (const FaultClass c : all_fault_classes()) {
    if (name == fault_class_name(c)) return c;
  }
  if (name == "none") return FaultClass::kNone;
  if (name == "torn") return FaultClass::kTornWrite;
  if (name == "drop" || name == "dropped") return FaultClass::kDroppedPersist;
  if (name == "reorder" || name == "reordered") return FaultClass::kReorderedPersist;
  if (name == "adr") return FaultClass::kAdrLoss;
  if (name == "data") return FaultClass::kBitFlipData;
  if (name == "counter") return FaultClass::kBitFlipCounter;
  if (name == "node") return FaultClass::kBitFlipNode;
  if (name == "mac") return FaultClass::kBitFlipMac;
  if (name == "record") return FaultClass::kBitFlipRecord;
  if (name == "correctable" || name == "cflip") return FaultClass::kCorrectableFlip;
  return std::nullopt;
}

const std::vector<FaultClass>& all_fault_classes() {
  static const std::vector<FaultClass> kAll = {
      FaultClass::kTornWrite,  FaultClass::kDroppedPersist, FaultClass::kReorderedPersist,
      FaultClass::kAdrLoss,    FaultClass::kBitFlipData,    FaultClass::kBitFlipCounter,
      FaultClass::kBitFlipNode, FaultClass::kBitFlipMac,    FaultClass::kBitFlipRecord,
      FaultClass::kCorrectableFlip,
  };
  return kAll;
}

FaultPlan FaultPlan::derive(FaultClass cls, std::uint64_t campaign_seed, std::uint64_t trial) {
  // Decorrelate the plan from the workload stream that uses the same
  // (seed, trial) pair: fold the class in as a third coordinate.
  SplitMix64 sm(campaign_seed ^ (trial * 0x9e3779b97f4a7c15ULL) ^
                (static_cast<std::uint64_t>(cls) << 56));
  FaultPlan plan;
  plan.cls = cls;
  plan.seed = sm.next();
  plan.intensity = 1 + static_cast<unsigned>(sm.next() % 3);  // 1..3 faults
  return plan;
}

std::string to_string(const FaultEvent& e) {
  const char* kind = "?";
  switch (e.kind) {
    case FaultEvent::Kind::kDrop:
      kind = "drop";
      break;
    case FaultEvent::Kind::kTear:
      kind = "tear";
      break;
    case FaultEvent::Kind::kReorder:
      kind = "reorder";
      break;
    case FaultEvent::Kind::kFlipBlock:
      kind = "flip-block";
      break;
    case FaultEvent::Kind::kFlipTag:
      kind = "flip-tag";
      break;
    case FaultEvent::Kind::kCorrectable:
      kind = "correctable";
      break;
    case FaultEvent::Kind::kRecoveryCrash:
      kind = "recovery-crash";
      break;
  }
  return std::string(kind) + "@0x" +
         [](std::uint64_t v) {
           char buf[17];
           std::snprintf(buf, sizeof buf, "%llx", static_cast<unsigned long long>(v));
           return std::string(buf);
         }(e.addr) +
         ":" + std::to_string(e.detail);
}

std::string FaultInjector::event_summary(std::size_t max_events) const {
  std::string out;
  const std::size_t n = std::min(max_events, events_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!out.empty()) out += ", ";
    out += to_string(events_[i]);
  }
  if (events_.size() > n) {
    out += ", +" + std::to_string(events_.size() - n) + " more";
  }
  return out;
}

Block FaultInjector::torn_block(const Block& oldv, const Block& newv,
                                std::uint64_t* word_mask) {
  // A 64 B line tears at the memory-word (8 B) granularity: some words of
  // the new data land, the rest keep the old image. Three shapes: a prefix
  // (write interrupted mid-line), a suffix (wear-leveled device writing
  // back-to-front), or an arbitrary interleave. Never all-new (that is a
  // completed write) and never all-old (that is a drop).
  constexpr unsigned kWords = kBlockSize / 8;
  std::uint64_t mask = 0;
  switch (rng_.below(3)) {
    case 0:  // prefix: words [0, k) are new, 1 <= k < kWords
      mask = (std::uint64_t{1} << (1 + rng_.below(kWords - 1))) - 1;
      break;
    case 1:  // suffix: words [k, kWords) are new, 1 <= k < kWords
      mask = ~((std::uint64_t{1} << (1 + rng_.below(kWords - 1))) - 1) &
             ((std::uint64_t{1} << kWords) - 1);
      break;
    default:  // interleave: random nonempty proper subset of the words
      do {
        mask = rng_.next() & ((std::uint64_t{1} << kWords) - 1);
      } while (mask == 0 || mask == (std::uint64_t{1} << kWords) - 1);
      break;
  }
  Block out = oldv;
  for (unsigned w = 0; w < kWords; ++w) {
    if (mask & (std::uint64_t{1} << w)) {
      std::memcpy(out.data() + w * 8, newv.data() + w * 8, 8);
    }
  }
  if (word_mask != nullptr) *word_mask = mask;
  return out;
}

void FaultInjector::commit(const QueuedWrite& w, NvmDevice& dev) {
  dev.write_block(w.addr, w.data);
  if (w.has_tag) dev.write_tag(w.addr, w.tag);
}

void FaultInjector::drain_crashed_queue(std::vector<QueuedWrite> entries, NvmDevice& dev) {
  switch (plan_.cls) {
    case FaultClass::kAdrLoss: {
      // The ADR guarantee fails wholesale: nothing queued reaches the array.
      for (const QueuedWrite& w : entries) {
        events_.push_back({FaultEvent::Kind::kDrop, w.addr, 0});
      }
      return;
    }
    case FaultClass::kTornWrite: {
      if (entries.empty()) return;
      // Pick `intensity` victims; everything drains in order, but a victim
      // lands as a mix of the old array image and the new line (its tag,
      // part of the same transaction, goes with whichever half carried it:
      // modeled as the tag tearing to the *old* tag — the transaction did
      // not complete).
      std::vector<std::size_t> victims;
      for (unsigned i = 0; i < plan_.intensity; ++i) {
        victims.push_back(static_cast<std::size_t>(rng_.below(entries.size())));
      }
      for (std::size_t i = 0; i < entries.size(); ++i) {
        QueuedWrite w = entries[i];
        if (std::find(victims.begin(), victims.end(), i) != victims.end()) {
          std::uint64_t mask = 0;
          w.data = torn_block(dev.peek_block(w.addr), w.data, &mask);
          w.has_tag = false;  // incomplete transaction: old tag survives
          events_.push_back({FaultEvent::Kind::kTear, w.addr, mask});
        }
        commit(w, dev);
      }
      return;
    }
    case FaultClass::kDroppedPersist: {
      if (entries.empty()) return;
      // Each queued write independently fails to land with p = 1/2; the
      // survivors drain in order. Guarantee at least one drop so the trial
      // actually exercises the class.
      std::vector<bool> dropped(entries.size(), false);
      bool any = false;
      for (std::size_t i = 0; i < entries.size(); ++i) {
        dropped[i] = rng_.chance(0.5);
        any = any || dropped[i];
      }
      if (!any) dropped[entries.size() - 1] = true;
      for (std::size_t i = 0; i < entries.size(); ++i) {
        if (dropped[i]) {
          events_.push_back({FaultEvent::Kind::kDrop, entries[i].addr, i});
        } else {
          commit(entries[i], dev);
        }
      }
      return;
    }
    case FaultClass::kReorderedPersist: {
      if (entries.size() < 2) {
        for (const QueuedWrite& w : entries) commit(w, dev);
        return;
      }
      // The controller drains out of order (bank scheduling) and power dies
      // mid-drain: a random permutation, cut after a random prefix. Writes
      // past the cut are lost; an older write can thereby overwrite a newer
      // one that already landed, or land while the newer one is lost.
      std::vector<std::size_t> order(entries.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      for (std::size_t i = order.size() - 1; i > 0; --i) {
        std::swap(order[i], order[static_cast<std::size_t>(rng_.below(i + 1))]);
      }
      const std::size_t committed = 1 + static_cast<std::size_t>(rng_.below(order.size()));
      for (std::size_t i = 0; i < committed; ++i) {
        const std::size_t src = order[i];
        if (src != i) events_.push_back({FaultEvent::Kind::kReorder, entries[src].addr, src});
        commit(entries[src], dev);
      }
      for (std::size_t i = committed; i < order.size(); ++i) {
        events_.push_back({FaultEvent::Kind::kDrop, entries[order[i]].addr, order[i]});
      }
      return;
    }
    default: {
      // Bit-flip classes (and kNone) leave the drain intact; their faults
      // apply post-crash on the array image.
      for (const QueuedWrite& w : entries) commit(w, dev);
      return;
    }
  }
}

void FaultInjector::flip_block_bit(NvmDevice& dev, Addr addr) {
  // Media flips are what the line's ECC sees: record the fault (flipping
  // the stored image exactly as before) so an ECC-aware reader classifies
  // the line instead of silently consuming garbage. A stuck cell is beyond
  // the correction budget, hence uncorrectable.
  const std::uint64_t bit = rng_.below(kBlockSize * 8);
  dev.inject_ecc_error(addr, static_cast<unsigned>(bit), /*correctable=*/false, 0);
  events_.push_back({FaultEvent::Kind::kFlipBlock, addr, bit});
}

void FaultInjector::flip_tag_bit(NvmDevice& dev, Addr addr) {
  const std::uint64_t bit = rng_.below(64);
  dev.write_tag(addr, dev.read_tag(addr) ^ (std::uint64_t{1} << bit));
  events_.push_back({FaultEvent::Kind::kFlipTag, addr, bit});
}

void FaultInjector::flip_correctable(NvmDevice& dev, Addr addr) {
  // A marginal cell within the SECDED budget: the golden image stays
  // recoverable, possibly after a few re-sense retries.
  const std::uint64_t bit = rng_.below(kBlockSize * 8);
  const unsigned retries = static_cast<unsigned>(rng_.below(3));
  dev.inject_ecc_error(addr, static_cast<unsigned>(bit), /*correctable=*/true, retries);
  events_.push_back({FaultEvent::Kind::kCorrectable, addr, bit});
}

RecoveryReport recover_with_retry(SecureMemory& mem, FaultInjector* injector,
                                  const RecoveryRetryPolicy& policy) {
  const unsigned max_attempts = std::max(1u, policy.max_recovery_attempts);
  for (unsigned attempt = 1;; ++attempt) {
    if (injector != nullptr) injector->begin_recovery_attempt();
    try {
      return mem.recover();
    } catch (const RecoveryCrash& rc) {
      mem.note_recovery_crash(rc.boundary, rc.stage);
      if (attempt >= max_attempts) {
        RecoveryReport r;
        r.status = Status(ErrorCode::kUnavailable,
                          "recovery crashed at persist boundary " +
                              std::to_string(rc.boundary) + " (" + rc.stage +
                              ") on attempt " + std::to_string(attempt) + "/" +
                              std::to_string(max_attempts));
        r.recovery_gave_up = true;
        r.attempts = mem.drain_attempt_log();
        return r;
      }
      // Power failed again mid-recovery: volatile state is lost and the ADR
      // domain drains once more before the attempt is re-entered. Media
      // faults (apply_post_crash) are NOT re-applied — they model the one
      // original failure, not a fault per retry.
      mem.crash();
      if (injector != nullptr && policy.exponential_backoff) {
        injector->backoff_recovery_budget();
      }
    }
  }
}

void FaultInjector::apply_post_crash(SecureMemory& mem) {
  NvmDevice& dev = mem.device();
  const SitGeometry& geo = mem.geometry();
  const Addr data_end = mem.config().nvm.capacity_bytes;
  const Addr leaves_end = geo.meta_base() + geo.level_count(0) * kBlockSize;

  Addr lo = 0, hi = 0;
  bool tags = false;
  switch (plan_.cls) {
    case FaultClass::kBitFlipData:
      lo = 0;
      hi = data_end;
      break;
    case FaultClass::kBitFlipCounter:
      lo = geo.meta_base();
      hi = leaves_end;
      break;
    case FaultClass::kBitFlipNode:
      lo = leaves_end;
      hi = geo.aux_base();
      break;
    case FaultClass::kBitFlipMac:
      lo = 0;
      hi = data_end;
      tags = true;
      break;
    case FaultClass::kBitFlipRecord:
      lo = geo.aux_base();
      hi = dev.address_limit();
      break;
    case FaultClass::kCorrectableFlip:
      // Marginal cells can sit anywhere: data, counters, nodes, or aux.
      lo = 0;
      hi = dev.address_limit();
      break;
    default:
      return;  // queue-fate classes act at drain time only
  }

  if (plan_.cls == FaultClass::kCorrectableFlip) {
    const std::vector<Addr> candidates = dev.resident_blocks(lo, hi);
    if (candidates.empty()) return;
    for (unsigned i = 0; i < plan_.intensity; ++i) {
      const Addr addr = candidates[static_cast<std::size_t>(rng_.below(candidates.size()))];
      flip_correctable(dev, addr);
    }
    return;
  }

  // Flip bits in resident state only: an untouched (all-zero) block has no
  // physical cell written, and the sorted candidate list keeps the choice
  // independent of hash-map iteration order.
  const std::vector<Addr> candidates =
      tags ? dev.resident_tags(lo, hi) : dev.resident_blocks(lo, hi);
  if (candidates.empty()) return;
  for (unsigned i = 0; i < plan_.intensity; ++i) {
    const Addr addr = candidates[static_cast<std::size_t>(rng_.below(candidates.size()))];
    if (tags) {
      flip_tag_bit(dev, addr);
    } else {
      flip_block_bit(dev, addr);
    }
  }
}

}  // namespace steins

#include "fault/endurance.hpp"

#include <cstring>
#include <map>
#include <sstream>

#include "common/rng.hpp"
#include "common/stats.hpp"

namespace steins {

namespace {

constexpr double kSecondsPerYear = 365.25 * 24 * 3600;

Block endurance_pattern(Addr addr, std::uint64_t version) {
  Block b = zero_block();
  std::memcpy(b.data(), &addr, 8);
  std::memcpy(b.data() + 8, &version, 8);
  const std::uint64_t mix = version * 0x9e3779b97f4a7c15ULL ^ addr;
  std::memcpy(b.data() + 16, &mix, 8);
  return b;
}

}  // namespace

EnduranceReport run_endurance_campaign(const EnduranceOptions& opts) {
  EnduranceReport rep;
  rep.options = opts;

  SystemConfig cfg = default_config();
  cfg.nvm.capacity_bytes = 16ULL << 20;
  cfg.secure.metadata_cache.size_bytes = 16 * 1024;
  cfg.crypto = CryptoProfile::kFast;
  cfg.nvm.endurance_mean_writes = opts.accel_endurance_mean;
  cfg.nvm.endurance_sigma_writes = opts.accel_endurance_sigma;
  cfg.nvm.wear_seed = opts.seed * 0x9e3779b97f4a7c15ULL + 0x77ea7ULL;
  cfg.nvm.remap_pool_lines = opts.remap_pool_lines;
  cfg.secure.ft = FaultToleranceConfig{.ecc_enabled = true,
                                       .max_read_retries = 3,
                                       .retry_backoff_cycles = 32,
                                       .scrub_interval_accesses = 64,
                                       .scrub_lines_per_epoch = 8,
                                       .scrub_verify_macs = true};
  std::unique_ptr<SecureMemory> mem = make_scheme(opts.scheme, cfg);
  auto* base = dynamic_cast<SecureMemoryBase*>(mem.get());
  NvmDevice& dev = mem->device();

  SplitMix64 sm(opts.seed ^ 0xead12ea5e5eedULL);
  Xoshiro256 rng(sm.next());

  const std::uint64_t hot_count = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             static_cast<double>(opts.footprint_blocks) * opts.hot_fraction));
  const auto pick_addr = [&]() -> Addr {
    // A hot head of the footprint takes hot_weight of the stream — the
    // skew that makes wear-leveling earn its keep.
    const std::uint64_t block = rng.chance(opts.hot_weight)
                                    ? rng.below(hot_count)
                                    : rng.below(opts.footprint_blocks);
    return block * kBlockSize;
  };

  std::map<Addr, std::uint64_t> versions;
  Cycle now = 0;

  const auto audit_read = [&](Addr addr) {
    Block got;
    try {
      now = mem->read_block(addr, now, &got);
    } catch (const StatusError& e) {
      if (is_unavailable(e.code())) {
        ++rep.audit_unavailable;
        return;
      }
      ++rep.audit_mismatches;
      return;
    } catch (const std::exception&) {
      ++rep.audit_mismatches;  // integrity violation or crash: a real bug here
      return;
    }
    const auto it = versions.find(addr);
    const Block want =
        it == versions.end() ? zero_block() : endurance_pattern(addr, it->second);
    if (got != want) ++rep.audit_mismatches;
  };

  for (std::uint64_t i = 0; i < opts.max_writes; ++i) {
    const Addr addr = pick_addr();
    const std::uint64_t v = versions[addr] + 1;
    try {
      now = mem->write_block(addr, endurance_pattern(addr, v), now);
      versions[addr] = v;
      ++rep.writes_issued;
    } catch (const StatusError& e) {
      if (!is_unavailable(e.code())) throw;
      ++rep.writes_rejected;  // the line is retired; service is degraded
    }

    const NvmStats& ns = dev.stats();
    if (rep.writes_to_first_leveling == 0 && ns.lines_wear_leveled > 0) {
      rep.writes_to_first_leveling = rep.writes_issued;
    }
    if (rep.writes_to_first_wearout == 0 && ns.lines_worn_out > 0) {
      rep.writes_to_first_wearout = rep.writes_issued;
    }
    if (rep.writes_to_pool_exhaustion == 0 && dev.remap_pool_free() == 0) {
      rep.writes_to_pool_exhaustion = rep.writes_issued;
    }

    if (opts.audit_every > 0 && (i + 1) % opts.audit_every == 0) {
      for (int k = 0; k < 4; ++k) audit_read(pick_addr());
    }
    // Stop once the pool is dry and the first run-to-failure retirement
    // landed: every milestone is measured, further writes add nothing.
    if (rep.writes_to_pool_exhaustion != 0 && rep.writes_to_first_wearout != 0) break;
  }

  // Wear profile over the data region: the hottest surviving line tells how
  // close the device is to its next casualty.
  for (const auto& [addr, wear] : dev.wear_profile(0, cfg.nvm.capacity_bytes)) {
    if (wear > rep.hottest_wear) {
      rep.hottest_wear = wear;
      rep.hottest_line = addr;
    }
  }

  // End-of-life integrity: crash, recover, audit every block ever written.
  // Worn lines may only refuse with typed errors; wrong plaintext is a bug.
  mem->crash();
  const RecoveryReport r = mem->recover();
  rep.recovery_clean = r.supported && !r.attack_detected && r.status.ok();
  now = 0;
  for (const auto& [addr, v] : versions) {
    (void)v;
    audit_read(addr);
  }

  const NvmStats& ns = dev.stats();
  rep.lines_wear_leveled = ns.lines_wear_leveled;
  rep.lines_worn_out = ns.lines_worn_out;
  rep.lines_remapped = ns.lines_remapped;
  rep.lines_quarantined = base->ft_stats().lines_quarantined;
  rep.scrub_detected = base->ft_stats().scrub_detected;

  // Projection: the write distribution is fixed, so per-line wear is
  // proportional to total device writes and the milestone horizon scales by
  // the endurance ratio; leveling across the full real device (instead of
  // the accelerated footprint) stretches it again by the line-count ratio.
  rep.accel_factor =
      opts.real_endurance_writes / static_cast<double>(opts.accel_endurance_mean) *
      (opts.real_capacity_lines / static_cast<double>(opts.footprint_blocks));
  const auto project_years = [&](std::uint64_t milestone_writes) -> double {
    if (milestone_writes == 0 || opts.writes_per_second <= 0.0) return 0.0;
    return static_cast<double>(milestone_writes) * rep.accel_factor /
           opts.writes_per_second / kSecondsPerYear;
  };
  rep.projected_years_first_wearout = project_years(rep.writes_to_first_wearout);
  rep.projected_years_pool_exhaustion = project_years(rep.writes_to_pool_exhaustion);
  return rep;
}

std::string EnduranceReport::to_string() const {
  std::ostringstream os;
  os << "endurance: " << writes_issued << " writes (" << writes_rejected
     << " rejected), leveling@" << writes_to_first_leveling << " wearout@"
     << writes_to_first_wearout << " pool-dry@" << writes_to_pool_exhaustion
     << "\n  lines: leveled=" << lines_wear_leveled << " worn=" << lines_worn_out
     << " remapped=" << lines_remapped << " quarantined=" << lines_quarantined
     << " scrub-detected=" << scrub_detected << " hottest-wear=" << hottest_wear
     << "\n  audit: mismatches=" << audit_mismatches
     << " unavailable=" << audit_unavailable
     << " recovery=" << (recovery_clean ? "clean" : "flagged")
     << "\n  projection (x" << accel_factor << " @ " << options.writes_per_second
     << " w/s): first wear-out " << projected_years_first_wearout
     << " years, pool exhaustion " << projected_years_pool_exhaustion << " years";
  return os.str();
}

std::string EnduranceReport::to_json() const {
  std::ostringstream os;
  os << "{\"scheme\": \"" << scheme_name(options.scheme, CounterMode::kGeneral)
     << "\", \"seed\": " << options.seed
     << ", \"accel_endurance_mean\": " << options.accel_endurance_mean
     << ", \"accel_endurance_sigma\": " << options.accel_endurance_sigma
     << ", \"remap_pool_lines\": " << options.remap_pool_lines
     << ", \"footprint_blocks\": " << options.footprint_blocks
     << ",\n \"writes_issued\": " << writes_issued
     << ", \"writes_rejected\": " << writes_rejected
     << ", \"writes_to_first_leveling\": " << writes_to_first_leveling
     << ", \"writes_to_first_wearout\": " << writes_to_first_wearout
     << ", \"writes_to_pool_exhaustion\": " << writes_to_pool_exhaustion
     << ",\n \"lines_wear_leveled\": " << lines_wear_leveled
     << ", \"lines_worn_out\": " << lines_worn_out
     << ", \"lines_remapped\": " << lines_remapped
     << ", \"lines_quarantined\": " << lines_quarantined
     << ", \"scrub_detected\": " << scrub_detected
     << ", \"hottest_wear\": " << hottest_wear
     << ",\n \"audit_mismatches\": " << audit_mismatches
     << ", \"audit_unavailable\": " << audit_unavailable
     << ", \"recovery_clean\": " << (recovery_clean ? "true" : "false")
     << ",\n \"real_endurance_writes\": " << options.real_endurance_writes
     << ", \"real_capacity_lines\": " << options.real_capacity_lines
     << ", \"writes_per_second\": " << options.writes_per_second
     << ", \"accel_factor\": " << accel_factor
     << ", \"projected_years_first_wearout\": " << projected_years_first_wearout
     << ", \"projected_years_pool_exhaustion\": " << projected_years_pool_exhaustion
     << "}\n";
  return os.str();
}

}  // namespace steins

// Three-level write-back, write-allocate CPU cache hierarchy (Table I).
//
// The hierarchy filters the trace's loads/stores down to last-level-cache
// misses and dirty writebacks, which are what reach the secure memory
// controller. Instruction fetches are assumed to hit (the paper's workloads
// are memory-bound on data). The model is non-inclusive.
#pragma once

#include <array>
#include <cstdint>

#include "cache/cache.hpp"
#include "common/config.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace steins {

/// Fixed-capacity address list for eviction fan-out. One access spills at
/// most three dirty lines (L3 demand victim + two L2→L3 cascades), so the
/// hot path never heap-allocates.
template <std::size_t N>
class WritebackList {
 public:
  void push_back(Addr a) {
    STEINS_CHECK(n_ < N, "writeback fan-out exceeds capacity");
    v_[n_++] = a;
  }
  const Addr* begin() const { return v_.data(); }
  const Addr* end() const { return v_.data() + n_; }
  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  Addr operator[](std::size_t i) const { return v_[i]; }

 private:
  std::array<Addr, N> v_{};
  std::size_t n_ = 0;
};

using Writebacks = WritebackList<4>;

/// What one CPU access produced at the memory boundary.
struct MemoryOps {
  int hit_level = 0;               // 1..3 = cache level, 4 = memory
  bool miss_fill = false;          // a demand read of `fill_addr` from memory
  Addr fill_addr = 0;
  Writebacks writebacks;           // dirty blocks evicted to memory (LLC)
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const SystemConfig& cfg);

  /// Perform a load/store of the block containing `addr`.
  MemoryOps access(Addr addr, bool is_write);

  /// Host-side prefetch hint for an upcoming access: pulls the L3 probe
  /// tags (the one per-level array big enough to miss in the host cache)
  /// ahead of the lookup. No simulated effect.
  void prefetch(Addr addr) const { l3_.prefetch(addr); }

  /// Evict every dirty block below `addr`'s block to memory (models a
  /// clwb+fence for the persistent workloads). Returns writebacks.
  Writebacks flush_block(Addr addr);

  /// Drop everything (simulated power loss: volatile caches are lost).
  void clear();

  const CacheStats& l1_stats() const { return l1_.stats(); }
  const CacheStats& l2_stats() const { return l2_.stats(); }
  const CacheStats& l3_stats() const { return l3_.stats(); }

 private:
  /// Install a dirty L2 victim into L3; records any L3 dirty victim as a
  /// memory writeback in `ops`.
  bool l2_victim_to_l3(Addr addr, MemoryOps& ops);

  TagCache l1_, l2_, l3_;
};

}  // namespace steins

// Three-level write-back, write-allocate CPU cache hierarchy (Table I).
//
// The hierarchy filters the trace's loads/stores down to last-level-cache
// misses and dirty writebacks, which are what reach the secure memory
// controller. Instruction fetches are assumed to hit (the paper's workloads
// are memory-bound on data). The model is non-inclusive.
#pragma once

#include <cstdint>
#include <vector>

#include "cache/cache.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

namespace steins {

/// What one CPU access produced at the memory boundary.
struct MemoryOps {
  int hit_level = 0;               // 1..3 = cache level, 4 = memory
  bool miss_fill = false;          // a demand read of `fill_addr` from memory
  Addr fill_addr = 0;
  std::vector<Addr> writebacks;    // dirty blocks evicted to memory (LLC)
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const SystemConfig& cfg);

  /// Perform a load/store of the block containing `addr`.
  MemoryOps access(Addr addr, bool is_write);

  /// Evict every dirty block below `addr`'s block to memory (models a
  /// clwb+fence for the persistent workloads). Returns writebacks.
  std::vector<Addr> flush_block(Addr addr);

  /// Drop everything (simulated power loss: volatile caches are lost).
  void clear();

  const CacheStats& l1_stats() const { return l1_.stats(); }
  const CacheStats& l2_stats() const { return l2_.stats(); }
  const CacheStats& l3_stats() const { return l3_.stats(); }

 private:
  /// Install a dirty L2 victim into L3; records any L3 dirty victim as a
  /// memory writeback in `ops`.
  bool l2_victim_to_l3(Addr addr, MemoryOps& ops);

  TagCache l1_, l2_, l3_;
};

}  // namespace steins

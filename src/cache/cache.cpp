#include "cache/cache.hpp"

#include <bit>

namespace steins {

std::size_t cache_num_sets(std::size_t size_bytes, unsigned ways, std::size_t block_bytes) {
  STEINS_CHECK(ways > 0 && block_bytes > 0, "cache geometry must be nonzero");
  const std::size_t lines = size_bytes / block_bytes;
  STEINS_CHECK(lines % ways == 0, "cache size must be a whole number of sets");
  const std::size_t sets = lines / ways;
  STEINS_CHECK(std::has_single_bit(sets), "number of sets must be a power of two");
  return sets;
}

}  // namespace steins

#include "cache/cache_hierarchy.hpp"

namespace steins {

CacheHierarchy::CacheHierarchy(const SystemConfig& cfg)
    : l1_(cfg.l1.size_bytes, cfg.l1.ways, cfg.l1.block_bytes),
      l2_(cfg.l2.size_bytes, cfg.l2.ways, cfg.l2.block_bytes),
      l3_(cfg.l3.size_bytes, cfg.l3.ways, cfg.l3.block_bytes) {}

MemoryOps CacheHierarchy::access(Addr addr, bool is_write) {
  MemoryOps ops;

  // L1.
  if (l1_.lookup(addr, is_write) != nullptr) {
    ops.hit_level = 1;
    return ops;
  }

  // L2.
  const bool l2_hit = l2_.lookup(addr) != nullptr;
  // L3 (only probed on L2 miss).
  bool l3_hit = false;
  if (!l2_hit) {
    l3_hit = l3_.lookup(addr) != nullptr;
    if (!l3_hit) {
      // Demand fill from memory.
      ops.miss_fill = true;
      ops.fill_addr = addr;
      if (auto victim = l3_.insert(addr, false, Empty{}); victim && victim->dirty) {
        ops.writebacks.push_back(victim->addr);
      }
    }
    // Allocate into L2 on the fill path.
    if (auto victim = l2_.insert(addr, false, Empty{}); victim && victim->dirty) {
      l2_victim_to_l3(victim->addr, ops);  // L2 dirty victim falls into L3
    }
  }
  ops.hit_level = l2_hit ? 2 : (l3_hit ? 3 : 4);

  // Allocate into L1; dirty victim falls into L2 (then possibly L3/memory).
  if (auto victim = l1_.insert(addr, is_write, Empty{}); victim && victim->dirty) {
    if (l2_.lookup(victim->addr, true) == nullptr) {
      if (auto v2 = l2_.insert(victim->addr, true, Empty{}); v2 && v2->dirty) {
        l2_victim_to_l3(v2->addr, ops);
      }
    }
  }
  return ops;
}

bool CacheHierarchy::l2_victim_to_l3(Addr addr, MemoryOps& ops) {
  if (l3_.lookup(addr, true) != nullptr) return true;
  if (auto v3 = l3_.insert(addr, true, Empty{}); v3 && v3->dirty) {
    ops.writebacks.push_back(v3->addr);
  }
  return true;
}

Writebacks CacheHierarchy::flush_block(Addr addr) {
  Writebacks writebacks;
  bool dirty = false;
  if (auto l1v = l1_.invalidate(addr); l1v && l1v->dirty) dirty = true;
  if (auto l2v = l2_.invalidate(addr); l2v && l2v->dirty) dirty = true;
  if (auto l3v = l3_.invalidate(addr); l3v && l3v->dirty) dirty = true;
  if (dirty) writebacks.push_back(addr);
  return writebacks;
}

void CacheHierarchy::clear() {
  l1_.clear();
  l2_.clear();
  l3_.clear();
}

}  // namespace steins

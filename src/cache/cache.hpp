// Generic set-associative write-back cache with true-LRU replacement.
//
// Used three ways: tag-only (CPU cache levels, Payload = Empty), with node
// payloads (the memory controller's metadata cache), and for the small
// ADR-resident record/bitmap line caches of Steins and STAR.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.hpp"
#include "common/types.hpp"

namespace steins {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t dirty_evictions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
  void reset() { *this = CacheStats{}; }
};

/// Number of sets for a (size, ways, block) geometry; asserts power of two.
std::size_t cache_num_sets(std::size_t size_bytes, unsigned ways, std::size_t block_bytes);

template <typename Payload>
class SetAssocCache {
 public:
  struct Line {
    Addr tag = 0;          // full block-aligned address
    bool valid = false;
    bool dirty = false;
    std::uint64_t lru = 0;  // larger = more recently used
    Payload payload{};
  };

  struct Evicted {
    Addr addr;
    bool dirty;
    Payload payload;
  };

  SetAssocCache(std::size_t size_bytes, unsigned ways, std::size_t block_bytes = kBlockSize)
      : ways_(ways),
        block_bytes_(block_bytes),
        sets_(cache_num_sets(size_bytes, ways, block_bytes)),
        lines_(sets_ * ways),
        probe_(sets_ * ways, kInvalidTag) {
    STEINS_CHECK(std::has_single_bit(block_bytes), "block size must be a power of two");
    block_shift_ = static_cast<unsigned>(std::countr_zero(block_bytes));
    set_mask_ = sets_ - 1;
    align_mask_ = ~(static_cast<Addr>(block_bytes) - 1);
  }

  std::size_t num_sets() const { return sets_; }
  unsigned ways() const { return ways_; }
  std::size_t num_lines() const { return lines_.size(); }

  /// Look up without allocating. Returns the line or nullptr. Updates LRU
  /// and the dirty bit on a hit.
  Line* lookup(Addr addr, bool mark_dirty = false) {
    const Addr tag = align(addr);
    const std::size_t base = set_index(tag) * ways_;
    // Probe the compact tag array first: one cache line covers a whole set
    // even when Payload is a fat tree node.
    for (unsigned w = 0; w < ways_; ++w) {
      if (probe_[base + w] == tag) {
        Line& line = lines_[base + w];
        line.lru = ++clock_;
        if (mark_dirty) line.dirty = true;
        ++stats_.hits;
        return &line;
      }
    }
    ++stats_.misses;
    return nullptr;
  }

  /// Pull the set's probe tags toward the host cache ahead of a lookup.
  /// Purely a host-side hint; no simulated effect.
  void prefetch(Addr addr) const { __builtin_prefetch(&probe_[set_index(align(addr)) * ways_]); }

  /// Mutable peek without touching LRU or stats.
  Line* peek_mut(Addr addr) {
    return const_cast<Line*>(static_cast<const SetAssocCache*>(this)->peek(addr));
  }

  /// Peek without touching LRU or stats (used by crash snapshots / tests).
  const Line* peek(Addr addr) const {
    const Addr tag = align(addr);
    const std::size_t base = set_index(tag) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
      if (probe_[base + w] == tag) return &lines_[base + w];
    }
    return nullptr;
  }

  /// Insert a block (must not already be present). Returns the victim if a
  /// valid line had to be evicted, along with its payload.
  std::optional<Evicted> insert(Addr addr, bool dirty, Payload payload, Line** out_line = nullptr) {
    const Addr tag = align(addr);
    // A duplicate insert would create two valid lines for one tag, so
    // lookup would hit either nondeterministically while eviction could
    // drop a dirty twin — silent corruption. assert() vanished under
    // NDEBUG; STEINS_CHECK stays armed in Release builds.
    STEINS_CHECK(peek(tag) == nullptr, "insert of already-cached block");
    const std::size_t base = set_index(tag) * ways_;
    Line* victim = &lines_[base];
    for (unsigned w = 0; w < ways_; ++w) {
      Line& line = lines_[base + w];
      if (!line.valid) {
        victim = &line;
        break;
      }
      if (line.lru < victim->lru) victim = &line;
    }
    std::optional<Evicted> evicted;
    if (victim->valid) {
      ++stats_.evictions;
      if (victim->dirty) ++stats_.dirty_evictions;
      evicted = Evicted{victim->tag, victim->dirty, std::move(victim->payload)};
    }
    victim->tag = tag;
    victim->valid = true;
    victim->dirty = dirty;
    victim->lru = ++clock_;
    victim->payload = std::move(payload);
    probe_[static_cast<std::size_t>(victim - lines_.data())] = tag;
    if (out_line != nullptr) *out_line = victim;
    return evicted;
  }

  /// Invalidate a block if present; returns its line contents.
  std::optional<Evicted> invalidate(Addr addr) {
    const Addr tag = align(addr);
    const std::size_t base = set_index(tag) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
      if (probe_[base + w] == tag) {
        Line& line = lines_[base + w];
        line.valid = false;
        probe_[base + w] = kInvalidTag;
        return Evicted{line.tag, line.dirty, std::move(line.payload)};
      }
    }
    return std::nullopt;
  }

  /// Index of the line (set * ways + way) a cached block occupies, or -1.
  /// Steins keys its offset records by this index; ASIT keys its shadow
  /// table by it.
  std::int64_t line_index(Addr addr) const {
    const Addr tag = align(addr);
    const std::size_t base = set_index(tag) * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
      if (probe_[base + w] == tag) return static_cast<std::int64_t>(base + w);
    }
    return -1;
  }

  /// Visit the valid lines of one set only (O(ways)).
  template <typename Fn>
  void for_each_in_set(std::size_t set, Fn&& fn) const {
    const std::size_t base = set * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
      const Line& line = lines_[base + w];
      if (line.valid) fn(line);
    }
  }

  /// Visit every valid line (e.g. to enumerate dirty nodes at crash time).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (auto& line : lines_) {
      if (line.valid) fn(line);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& line : lines_) {
      if (line.valid) fn(line);
    }
  }

  void clear() {
    for (auto& line : lines_) line = Line{};
    std::fill(probe_.begin(), probe_.end(), kInvalidTag);
  }

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_.reset(); }

  std::size_t set_index(Addr addr) const { return (addr >> block_shift_) & set_mask_; }

 private:
  // Not block-aligned, so it can never collide with a stored tag.
  static constexpr Addr kInvalidTag = ~static_cast<Addr>(0);

  Addr align(Addr a) const { return a & align_mask_; }

  unsigned ways_;
  std::size_t block_bytes_;
  std::size_t sets_;
  std::vector<Line> lines_;
  /// Tag-or-kInvalidTag per line, contiguous per set, probed before lines_.
  std::vector<Addr> probe_;
  unsigned block_shift_ = 0;
  std::size_t set_mask_ = 0;
  Addr align_mask_ = 0;
  std::uint64_t clock_ = 0;
  CacheStats stats_;
};

/// Tag-only payload for CPU cache levels.
struct Empty {};

using TagCache = SetAssocCache<Empty>;

}  // namespace steins

#include "crypto/siphash.hpp"

namespace steins::crypto {

SipHash24::SipHash24(const Key& key) {
  k0_ = detail::load_le64(key.data());
  k1_ = detail::load_le64(key.data() + 8);
}

}  // namespace steins::crypto

#include "crypto/siphash.hpp"

#include <bit>
#include <cstring>

namespace steins::crypto {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int b) { return std::rotl(x, b); }

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  void round() {
    v0 += v1;
    v1 = rotl(v1, 13);
    v1 ^= v0;
    v0 = rotl(v0, 32);
    v2 += v3;
    v3 = rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl(v1, 17);
    v1 ^= v2;
    v2 = rotl(v2, 32);
  }

  void compress(std::uint64_t m) {
    v3 ^= m;
    round();
    round();
    v0 ^= m;
  }

  std::uint64_t finalize() {
    v2 ^= 0xff;
    round();
    round();
    round();
    round();
    return v0 ^ v1 ^ v2 ^ v3;
  }
};

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // little-endian host assumed (x86-64)
}

}  // namespace

SipHash24::SipHash24(const Key& key) {
  const std::uint64_t k0 = load_le64(key.data());
  const std::uint64_t k1 = load_le64(key.data() + 8);
  k0_ = k0;
  k1_ = k1;
}

std::uint64_t SipHash24::hash(std::span<const std::uint8_t> data) const {
  SipState s{0x736f6d6570736575ULL ^ k0_, 0x646f72616e646f6dULL ^ k1_,
             0x6c7967656e657261ULL ^ k0_, 0x7465646279746573ULL ^ k1_};
  const std::size_t n = data.size();
  std::size_t off = 0;
  while (off + 8 <= n) {
    s.compress(load_le64(data.data() + off));
    off += 8;
  }
  std::uint64_t last = static_cast<std::uint64_t>(n & 0xff) << 56;
  for (std::size_t i = 0; off + i < n; ++i) {
    last |= static_cast<std::uint64_t>(data[off + i]) << (8 * i);
  }
  s.compress(last);
  return s.finalize();
}

std::uint64_t SipHash24::hash_words(std::uint64_t a, std::uint64_t b) const {
  SipState s{0x736f6d6570736575ULL ^ k0_, 0x646f72616e646f6dULL ^ k1_,
             0x6c7967656e657261ULL ^ k0_, 0x7465646279746573ULL ^ k1_};
  s.compress(a);
  s.compress(b);
  s.compress(std::uint64_t{16} << 56);
  return s.finalize();
}

}  // namespace steins::crypto

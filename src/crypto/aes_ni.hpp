// AES-NI kernels for the hw crypto backend.
//
// The functions take the byte-form round-key schedule Aes128 already
// expands ((kRounds+1) x 16 bytes in FIPS-197 order) — AES-NI consumes
// round keys in exactly that memory layout, so there is no second key
// schedule to keep in sync.
//
// This translation unit is compiled with `-maes -mssse3` when the compiler
// supports it (STEINS_AESNI_COMPILED set per-file by CMake); otherwise the
// same symbols are built as stubs with compiled() == false. Callers must
// gate on aes_hw_available() (compiled + CPUID), which the backend registry
// does — these functions are never reached on hardware without AES-NI.
#pragma once

#include <cstdint>

namespace steins::crypto::aesni {

/// True when this TU was built with AES-NI instruction support.
bool compiled();

/// Encrypt one 16-byte block in place.
void encrypt_block(const std::uint8_t* round_keys, std::uint8_t* block);

/// Decrypt one 16-byte block in place (equivalent inverse cipher via
/// AESIMC; decryption is off the OTP hot path, so the inverse schedule is
/// derived per call instead of being cached).
void decrypt_block(const std::uint8_t* round_keys, std::uint8_t* block);

/// Encrypt 4 contiguous 16-byte blocks in place, with the rounds
/// interleaved across the four lanes. aesenc has multi-cycle latency but
/// single-cycle throughput on every AES-NI core, so issuing the same round
/// for all lanes back-to-back hides nearly all of the latency — this is the
/// OTP CTR kernel (OtpEngine::pad encrypts exactly 4 blocks per call).
void encrypt4(const std::uint8_t* round_keys, std::uint8_t* blocks);

}  // namespace steins::crypto::aesni

// Runtime-dispatched crypto backend registry.
//
// Three backends compute the same primitives with different machinery:
//
//   kRef     byte-wise FIPS-197 AES + scalar SHA-256 (verification baseline)
//   kTtable  constexpr T-table AES + scalar SHA-256 (portable fast path)
//   kHw      AES-NI 4-lane pipelined CTR + SHA-NI compress (hardware path,
//            CPUID-gated; models the controller-resident AES/SHA engines
//            that secure-NVM proposals assume)
//
// All three are bit-identical by construction: they implement the same
// FIPS-197 / FIPS 180-4 functions, so switching backends never changes a
// ciphertext, pad, or tag — only host wall-clock. `crypto_self_check()`
// cross-verifies every available backend on known-answer vectors and random
// inputs; tools call it at startup.
//
// Selection order (first match wins):
//   1. an explicit `set_crypto_backend()` call (the `--crypto-backend` flag)
//   2. the STEINS_CRYPTO_BACKEND environment variable (ref|ttable|hw|auto)
//   3. auto: kHw when CPUID reports AES-NI (and the files were compiled
//      with ISA support), kTtable otherwise
//
// A request for an unavailable backend clamps to the best available one
// (with a stderr note), so scripted runs never die on older hardware.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace steins::crypto {

enum class CryptoBackend { kRef, kTtable, kHw };

/// Short stable name: "ref", "ttable", "hw" (used by CLI flags, env
/// parsing, bench JSON, and CI lane names).
const char* backend_name(CryptoBackend backend);

/// Parse a backend name ("ref"/"ttable"/"hw"); "auto" and unknown strings
/// return nullopt (callers treat "auto" as "clear the override").
std::optional<CryptoBackend> parse_backend(std::string_view name);

/// CPUID feature probes (false on non-x86 builds).
bool cpu_has_aesni();
bool cpu_has_shani();

/// True when the AES-NI / SHA-NI translation units were compiled with ISA
/// support AND the CPU reports the feature.
bool aes_hw_available();
bool sha_hw_available();

/// The backend the process is currently dispatching to. Resolved lazily
/// from the selection order above; always an *available* backend.
CryptoBackend active_backend();

/// Force a backend (the `--crypto-backend` flag). Requests for kHw on a
/// machine without AES-NI clamp to kTtable with a stderr note. Returns the
/// backend actually activated.
CryptoBackend set_crypto_backend(CryptoBackend backend);

/// True when SHA-256 should use the SHA-NI compress: the hw backend is
/// active and the CPU has the extension. (AES-NI-only machines run the hw
/// backend with hardware AES and scalar SHA.)
bool sha_hw_active();

/// Cross-verify every available backend at startup: FIPS-197 / SP800-38A
/// AES vectors, the RFC 4231 HMAC case, and pad/tag cross-equality between
/// backends. Returns false and fills `detail` on any mismatch.
bool crypto_self_check(std::string* detail = nullptr);

/// RAII backend override for tests and per-backend benchmarks.
class ScopedCryptoBackend {
 public:
  explicit ScopedCryptoBackend(CryptoBackend backend)
      : previous_(active_backend()) {
    set_crypto_backend(backend);
  }
  ~ScopedCryptoBackend() { set_crypto_backend(previous_); }
  ScopedCryptoBackend(const ScopedCryptoBackend&) = delete;
  ScopedCryptoBackend& operator=(const ScopedCryptoBackend&) = delete;

 private:
  CryptoBackend previous_;
};

}  // namespace steins::crypto

// MacEngine: the keyed-MAC facade used for SIT node HMACs and data HMACs.
//
// Real profile: HMAC-SHA256 truncated to 64 bits. Fast profile: SipHash-2-4.
// Both are keyed 64-bit MACs; the simulator charges the same modeled hash
// latency (SecureConfig::hash_latency_cycles) for either.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "common/config.hpp"
#include "common/types.hpp"
#include "crypto/backend.hpp"
#include "crypto/hmac.hpp"
#include "crypto/siphash.hpp"

namespace steins::crypto {

class MacEngine {
 public:
  /// `backend` pins the hash backend (tests/benchmarks); nullopt follows
  /// the process-wide registry.
  MacEngine(CryptoProfile profile, std::uint64_t key_seed,
            std::optional<CryptoBackend> backend = std::nullopt);

  /// Generic keyed 64-bit MAC over raw bytes.
  std::uint64_t mac64(std::span<const std::uint8_t> data) const;

  /// SIT node HMAC (paper §II-C): MAC over (counter payload, node address,
  /// parent counter). `payload` is the node's 56-byte counter area.
  std::uint64_t node_mac(std::span<const std::uint8_t> payload, Addr node_addr,
                         std::uint64_t parent_counter) const;

  /// Data-block HMAC (paper §II-C): MAC over (ciphertext, address, counter).
  /// `aux` lets Steins-SC fold the leaf major counter into the data HMAC
  /// (paper §II-D: "we store the major counter in the HMAC of the data
  /// block for recovery"); pass 0 when unused.
  std::uint64_t data_mac(const Block& ciphertext, Addr addr, std::uint64_t counter,
                         std::uint64_t aux = 0) const;

  CryptoProfile profile() const { return profile_; }

 private:
  CryptoProfile profile_;
  std::unique_ptr<HmacSha256> hmac_;
  std::unique_ptr<SipHash24> sip_;
};

}  // namespace steins::crypto

// SHA-NI (Intel SHA extensions) SHA-256 compress for the hw backend.
//
// One function: run the FIPS 180-4 compression over a single 64-byte block
// against an 8-word state. Bit-identical to the scalar compress in
// sha256.cpp; Sha256::compress dispatches here when the hw backend is
// active and CPUID reports the SHA extensions.
//
// Compiled with `-msha -msse4.1 -mssse3` when the compiler supports it
// (STEINS_SHANI_COMPILED set per-file by CMake); stubbed otherwise. Callers
// gate on sha_hw_available() via the backend registry.
#pragma once

#include <cstdint>

namespace steins::crypto::shani {

/// True when this TU was built with SHA extension support.
bool compiled();

/// state = SHA-256 compress(state, block). `state` is the 8-word working
/// state (a..h), `block` one 64-byte message block.
void compress(std::uint32_t* state, const std::uint8_t* block);

}  // namespace steins::crypto::shani

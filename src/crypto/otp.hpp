// One-time-pad generation for counter-mode encryption (CME, paper §II-B).
//
// The OTP for a 64 B data block is derived from (secret key, block address,
// counter): four AES-128 blocks in CTR fashion in the real profile, or eight
// SipHash words in the fast profile. XORing data with the OTP encrypts;
// XORing again decrypts.
#pragma once

#include <cstdint>
#include <memory>

#include "common/config.hpp"
#include "common/types.hpp"
#include "crypto/aes.hpp"
#include "crypto/siphash.hpp"

namespace steins::crypto {

class OtpEngine {
 public:
  OtpEngine(CryptoProfile profile, std::uint64_t key_seed);

  /// Generate the 64-byte pad for (address, counter). The counter here is
  /// the full encryption counter: for split-counter blocks callers pass
  /// major << 7 | minor composed by the CME layer.
  Block pad(Addr addr, std::uint64_t counter) const;

  CryptoProfile profile() const { return profile_; }

 private:
  CryptoProfile profile_;
  std::unique_ptr<Aes128> aes_;
  std::unique_ptr<SipHash24> sip_;
};

}  // namespace steins::crypto

// One-time-pad generation for counter-mode encryption (CME, paper §II-B).
//
// The OTP for a 64 B data block is derived from (secret key, block address,
// counter): four AES-128 blocks in CTR fashion in the real profile, or eight
// SipHash words in the fast profile. XORing data with the OTP encrypts;
// XORing again decrypts.
//
// Pad-domain versions. Each version pins both the key-derivation domain
// constant and the CTR input-block layout, so pads from one version can
// always be regenerated later even after the layout evolves:
//
//   kV1  domain "OTP_KEY1"; lane i XORed into the counter's top 4 bits
//        (counter ^ (i << 60)). Legacy: lanes alias once a counter's top
//        bits are set — (counter, lane i) and (counter ^ (i << 60), lane 0)
//        produce the same AES input, i.e. the same 16-byte pad chunk.
//   kV2  (default) domain "OTP_KEY2"; the lane index lives in byte 7 of
//        the input block — the most-significant byte of the little-endian
//        address word, unused because block addresses are < 2^56 (checked).
//        The counter field is untouched, so lanes can never collide for
//        any counter value.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "common/config.hpp"
#include "common/types.hpp"
#include "crypto/aes.hpp"
#include "crypto/backend.hpp"
#include "crypto/siphash.hpp"

namespace steins::crypto {

/// Versioned pad domain: the value doubles as the key-derivation domain
/// constant, so each version's pads come from distinct key material.
enum class PadDomain : std::uint64_t {
  kV1 = 0x4f54505f4b455931ULL,  // "OTP_KEY1"
  kV2 = 0x4f54505f4b455932ULL,  // "OTP_KEY2"
};

class OtpEngine {
 public:
  /// `backend` pins the AES backend (tests/benchmarks); nullopt follows the
  /// process-wide registry.
  OtpEngine(CryptoProfile profile, std::uint64_t key_seed,
            PadDomain domain = PadDomain::kV2,
            std::optional<CryptoBackend> backend = std::nullopt);

  /// Generate the 64-byte pad for (address, counter). The counter here is
  /// the full encryption counter: for split-counter blocks callers pass
  /// major << 7 | minor composed by the CME layer.
  Block pad(Addr addr, std::uint64_t counter) const;

  CryptoProfile profile() const { return profile_; }
  PadDomain domain() const { return domain_; }

 private:
  CryptoProfile profile_;
  PadDomain domain_;
  std::unique_ptr<Aes128> aes_;
  std::unique_ptr<SipHash24> sip_;
};

}  // namespace steins::crypto

#include "crypto/aes_ni.hpp"

#ifdef STEINS_AESNI_COMPILED

#include <emmintrin.h>
#include <wmmintrin.h>

namespace steins::crypto::aesni {

namespace {

inline __m128i load_rk(const std::uint8_t* round_keys, unsigned round) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(round_keys + round * 16));
}

}  // namespace

bool compiled() { return true; }

void encrypt_block(const std::uint8_t* round_keys, std::uint8_t* block) {
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
  b = _mm_xor_si128(b, load_rk(round_keys, 0));
  for (unsigned r = 1; r < 10; ++r) b = _mm_aesenc_si128(b, load_rk(round_keys, r));
  b = _mm_aesenclast_si128(b, load_rk(round_keys, 10));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(block), b);
}

void decrypt_block(const std::uint8_t* round_keys, std::uint8_t* block) {
  __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(block));
  b = _mm_xor_si128(b, load_rk(round_keys, 10));
  for (unsigned r = 9; r >= 1; --r) {
    b = _mm_aesdec_si128(b, _mm_aesimc_si128(load_rk(round_keys, r)));
  }
  b = _mm_aesdeclast_si128(b, load_rk(round_keys, 0));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(block), b);
}

void encrypt4(const std::uint8_t* round_keys, std::uint8_t* blocks) {
  __m128i* p = reinterpret_cast<__m128i*>(blocks);
  __m128i k = load_rk(round_keys, 0);
  __m128i b0 = _mm_xor_si128(_mm_loadu_si128(p + 0), k);
  __m128i b1 = _mm_xor_si128(_mm_loadu_si128(p + 1), k);
  __m128i b2 = _mm_xor_si128(_mm_loadu_si128(p + 2), k);
  __m128i b3 = _mm_xor_si128(_mm_loadu_si128(p + 3), k);
  for (unsigned r = 1; r < 10; ++r) {
    k = load_rk(round_keys, r);
    b0 = _mm_aesenc_si128(b0, k);
    b1 = _mm_aesenc_si128(b1, k);
    b2 = _mm_aesenc_si128(b2, k);
    b3 = _mm_aesenc_si128(b3, k);
  }
  k = load_rk(round_keys, 10);
  _mm_storeu_si128(p + 0, _mm_aesenclast_si128(b0, k));
  _mm_storeu_si128(p + 1, _mm_aesenclast_si128(b1, k));
  _mm_storeu_si128(p + 2, _mm_aesenclast_si128(b2, k));
  _mm_storeu_si128(p + 3, _mm_aesenclast_si128(b3, k));
}

}  // namespace steins::crypto::aesni

#else  // !STEINS_AESNI_COMPILED

#include "common/status.hpp"

namespace steins::crypto::aesni {

bool compiled() { return false; }

void encrypt_block(const std::uint8_t*, std::uint8_t*) {
  STEINS_CHECK(false, "AES-NI backend invoked but not compiled in");
}

void decrypt_block(const std::uint8_t*, std::uint8_t*) {
  STEINS_CHECK(false, "AES-NI backend invoked but not compiled in");
}

void encrypt4(const std::uint8_t*, std::uint8_t*) {
  STEINS_CHECK(false, "AES-NI backend invoked but not compiled in");
}

}  // namespace steins::crypto::aesni

#endif  // STEINS_AESNI_COMPILED

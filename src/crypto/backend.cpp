#include "crypto/backend.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "crypto/aes.hpp"
#include "crypto/aes_ni.hpp"
#include "crypto/hmac.hpp"
#include "crypto/otp.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha_ni.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace steins::crypto {

namespace {

// -1 = not yet resolved; otherwise a CryptoBackend value. Resolution is
// deterministic (env + CPUID), so a racy first call is benign.
std::atomic<int> g_active{-1};
std::atomic<bool> g_sha_hw{false};

struct CpuFeatures {
  bool aesni = false;
  bool ssse3 = false;
  bool sse41 = false;
  bool sha = false;
};

CpuFeatures probe_cpu() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.aesni = (ecx & (1u << 25)) != 0;
    f.ssse3 = (ecx & (1u << 9)) != 0;
    f.sse41 = (ecx & (1u << 19)) != 0;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.sha = (ebx & (1u << 29)) != 0;
  }
#endif
  return f;
}

const CpuFeatures& cpu() {
  static const CpuFeatures f = probe_cpu();
  return f;
}

CryptoBackend clamp_to_available(CryptoBackend backend, const char* origin) {
  if (backend == CryptoBackend::kHw && !aes_hw_available()) {
    std::fprintf(stderr,
                 "steins: %s requested the hw crypto backend but AES-NI is "
                 "unavailable; using ttable\n",
                 origin);
    return CryptoBackend::kTtable;
  }
  return backend;
}

CryptoBackend resolve_default() {
  if (const char* env = std::getenv("STEINS_CRYPTO_BACKEND")) {
    if (const auto parsed = parse_backend(env)) {
      return clamp_to_available(*parsed, "STEINS_CRYPTO_BACKEND");
    }
    if (std::strcmp(env, "auto") != 0 && env[0] != '\0') {
      std::fprintf(stderr,
                   "steins: unknown STEINS_CRYPTO_BACKEND '%s' "
                   "(expected ref|ttable|hw|auto); using auto\n",
                   env);
    }
  }
  return aes_hw_available() ? CryptoBackend::kHw : CryptoBackend::kTtable;
}

void publish(CryptoBackend backend) {
  g_sha_hw.store(backend == CryptoBackend::kHw && sha_hw_available(),
                 std::memory_order_relaxed);
  g_active.store(static_cast<int>(backend), std::memory_order_release);
}

}  // namespace

const char* backend_name(CryptoBackend backend) {
  switch (backend) {
    case CryptoBackend::kRef: return "ref";
    case CryptoBackend::kTtable: return "ttable";
    case CryptoBackend::kHw: return "hw";
  }
  return "?";
}

std::optional<CryptoBackend> parse_backend(std::string_view name) {
  if (name == "ref") return CryptoBackend::kRef;
  if (name == "ttable") return CryptoBackend::kTtable;
  if (name == "hw") return CryptoBackend::kHw;
  return std::nullopt;
}

bool cpu_has_aesni() { return cpu().aesni && cpu().ssse3; }

bool cpu_has_shani() { return cpu().sha && cpu().sse41 && cpu().ssse3; }

bool aes_hw_available() { return aesni::compiled() && cpu_has_aesni(); }

bool sha_hw_available() { return shani::compiled() && cpu_has_shani(); }

CryptoBackend active_backend() {
  const int v = g_active.load(std::memory_order_acquire);
  if (v >= 0) return static_cast<CryptoBackend>(v);
  const CryptoBackend resolved = resolve_default();
  publish(resolved);
  return resolved;
}

CryptoBackend set_crypto_backend(CryptoBackend backend) {
  const CryptoBackend actual = clamp_to_available(backend, "--crypto-backend");
  publish(actual);
  return actual;
}

bool sha_hw_active() {
  if (g_active.load(std::memory_order_acquire) < 0) active_backend();
  return g_sha_hw.load(std::memory_order_relaxed);
}

bool crypto_self_check(std::string* detail) {
  const auto fail = [&](const std::string& what) {
    if (detail != nullptr) *detail = what;
    return false;
  };

  std::vector<CryptoBackend> backends{CryptoBackend::kRef, CryptoBackend::kTtable};
  if (aes_hw_available()) backends.push_back(CryptoBackend::kHw);

  // FIPS-197 Appendix C.1 known answer, per backend, both directions.
  Aes128::Key key{};
  Aes128::BlockBytes pt{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i);
  for (std::size_t i = 0; i < pt.size(); ++i) pt[i] = static_cast<std::uint8_t>(i * 0x11);
  constexpr Aes128::BlockBytes expect{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                                      0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  for (const CryptoBackend b : backends) {
    const Aes128 aes(key, b);
    if (aes.encrypt(pt) != expect) {
      return fail(std::string("AES FIPS-197 encrypt mismatch on backend ") +
                  backend_name(b));
    }
    if (aes.decrypt(expect) != pt) {
      return fail(std::string("AES FIPS-197 decrypt mismatch on backend ") +
                  backend_name(b));
    }
  }

  // SHA-256("abc") known answer per backend (exercises SHA-NI under hw).
  constexpr std::uint8_t abc[3] = {'a', 'b', 'c'};
  constexpr std::uint8_t sha_abc[8] = {0xba, 0x78, 0x16, 0xbf, 0x8f, 0x01, 0xcf, 0xea};
  for (const CryptoBackend b : backends) {
    Sha256 h(b);
    h.update(abc);
    const auto digest = h.finalize();
    if (std::memcmp(digest.data(), sha_abc, sizeof(sha_abc)) != 0) {
      return fail(std::string("SHA-256 known-answer mismatch on backend ") +
                  backend_name(b));
    }
  }

  // RFC 4231 case 1 per backend, plus cross-backend pad/tag equality on a
  // handful of structured inputs.
  const std::uint8_t hmac_key[20] = {0x0b, 0x0b, 0x0b, 0x0b, 0x0b, 0x0b, 0x0b,
                                     0x0b, 0x0b, 0x0b, 0x0b, 0x0b, 0x0b, 0x0b,
                                     0x0b, 0x0b, 0x0b, 0x0b, 0x0b, 0x0b};
  const std::uint8_t hi_there[8] = {'H', 'i', ' ', 'T', 'h', 'e', 'r', 'e'};
  constexpr std::uint64_t rfc4231_case1_prefix = 0xb0344c61d8db3853ULL;
  for (const CryptoBackend b : backends) {
    const HmacSha256 mac({hmac_key, sizeof(hmac_key)}, b);
    if (mac.tag64(hi_there) != rfc4231_case1_prefix) {
      return fail(std::string("HMAC RFC4231 mismatch on backend ") + backend_name(b));
    }
  }

  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    const Addr addr = (trial * 0x40c0ULL) & ~0x3fULL;
    const std::uint64_t ctr = trial * 0x123456789ULL + (trial << 60);
    Block pads[3];
    std::uint64_t tags[3];
    for (std::size_t i = 0; i < backends.size(); ++i) {
      const OtpEngine otp(CryptoProfile::kReal, 7, PadDomain::kV2, backends[i]);
      pads[i] = otp.pad(addr, ctr);
      const HmacSha256 mac({hmac_key, sizeof(hmac_key)}, backends[i]);
      tags[i] = mac.tag64({pads[i].data(), pads[i].size()});
    }
    for (std::size_t i = 1; i < backends.size(); ++i) {
      if (pads[i] != pads[0]) {
        return fail(std::string("OTP pad divergence between backends ") +
                    backend_name(backends[0]) + " and " + backend_name(backends[i]));
      }
      if (tags[i] != tags[0]) {
        return fail(std::string("HMAC tag divergence between backends ") +
                    backend_name(backends[0]) + " and " + backend_name(backends[i]));
      }
    }
  }

  return true;
}

}  // namespace steins::crypto

// HMAC-SHA256 (RFC 2104 / FIPS 198-1), with a 64-bit truncation helper.
//
// The paper's SIT nodes and data blocks carry 64-bit HMACs; we truncate the
// full HMAC-SHA256 tag to its first 8 bytes (big-endian), the standard
// construction for shortened MACs.
//
// Midstate caching: the key-dependent first block of each hash (the ipad
// and opad blocks) is compressed once at key setup and the resulting 8-word
// SHA-256 states are saved. Every tag() then resumes from those midstates,
// cutting two of the four compressions a short-message HMAC costs —
// exactly the trick a hardware HMAC engine with key-state registers uses.
// Bit-identical to the two-pass construction by definition of SHA-256.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "crypto/backend.hpp"
#include "crypto/sha256.hpp"

namespace steins::crypto {

class HmacSha256 {
 public:
  static constexpr std::size_t kTagBytes = Sha256::kDigestBytes;
  using Tag = Sha256::Digest;

  /// Follows the process-wide crypto backend; pass `backend` to pin one
  /// (tests and per-backend benchmarks).
  explicit HmacSha256(std::span<const std::uint8_t> key,
                      std::optional<CryptoBackend> backend = std::nullopt);

  /// Full 32-byte tag over `data`.
  Tag tag(std::span<const std::uint8_t> data) const;

  /// First 8 bytes of the tag as a big-endian uint64 (the paper's 64-bit
  /// HMAC field).
  std::uint64_t tag64(std::span<const std::uint8_t> data) const;

 private:
  // SHA-256 states after absorbing the 64-byte ipad/opad key blocks.
  Sha256::State inner_mid_{};
  Sha256::State outer_mid_{};
  std::optional<CryptoBackend> backend_;
};

}  // namespace steins::crypto

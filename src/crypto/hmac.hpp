// HMAC-SHA256 (RFC 2104 / FIPS 198-1), with a 64-bit truncation helper.
//
// The paper's SIT nodes and data blocks carry 64-bit HMACs; we truncate the
// full HMAC-SHA256 tag to its first 8 bytes (big-endian), the standard
// construction for shortened MACs.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/sha256.hpp"

namespace steins::crypto {

class HmacSha256 {
 public:
  static constexpr std::size_t kTagBytes = Sha256::kDigestBytes;
  using Tag = Sha256::Digest;

  explicit HmacSha256(std::span<const std::uint8_t> key);

  /// Full 32-byte tag over `data`.
  Tag tag(std::span<const std::uint8_t> data) const;

  /// First 8 bytes of the tag as a big-endian uint64 (the paper's 64-bit
  /// HMAC field).
  std::uint64_t tag64(std::span<const std::uint8_t> data) const;

 private:
  std::array<std::uint8_t, 64> ipad_key_{};
  std::array<std::uint8_t, 64> opad_key_{};
};

}  // namespace steins::crypto

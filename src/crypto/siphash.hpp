// SipHash-2-4 (Aumasson & Bernstein): a fast keyed 64-bit PRF.
//
// Used by the kFast crypto profile as the MAC and OTP primitive so that the
// figure benches run quickly on one core; the control flow, traffic, and
// modeled latency are identical to the real AES/HMAC profile.
//
// The word-granular entry points (hash_words, hash_concat) are defined
// inline: they sit on the per-access pad/MAC path of every simulated memory
// operation, and keeping the round function visible to the compiler lets it
// unroll the fixed-length message schedules completely.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <span>

namespace steins::crypto {

namespace detail {

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  void round() {
    v0 += v1;
    v1 = std::rotl(v1, 13);
    v1 ^= v0;
    v0 = std::rotl(v0, 32);
    v2 += v3;
    v3 = std::rotl(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = std::rotl(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = std::rotl(v1, 17);
    v1 ^= v2;
    v2 = std::rotl(v2, 32);
  }

  void compress(std::uint64_t m) {
    v3 ^= m;
    round();
    round();
    v0 ^= m;
  }

  std::uint64_t finalize() {
    v2 ^= 0xff;
    round();
    round();
    round();
    round();
    return v0 ^ v1 ^ v2 ^ v3;
  }
};

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // little-endian host assumed (x86-64)
}

}  // namespace detail

class SipHash24 {
 public:
  using Key = std::array<std::uint8_t, 16>;

  explicit SipHash24(const Key& key);

  /// 64-bit keyed hash of `data`. Inline for the same reason as the word
  /// entry points: STAR's set MACs call this per node modification.
  std::uint64_t hash(std::span<const std::uint8_t> data) const {
    detail::SipState s = init();
    const std::size_t n = data.size();
    std::size_t off = 0;
    while (off + 8 <= n) {
      s.compress(detail::load_le64(data.data() + off));
      off += 8;
    }
    std::uint64_t last = static_cast<std::uint64_t>(n & 0xff) << 56;
    for (std::size_t i = 0; off + i < n; ++i) {
      last |= static_cast<std::uint64_t>(data[off + i]) << (8 * i);
    }
    s.compress(last);
    return s.finalize();
  }

  /// 64-bit keyed hash of two machine words (hot path: address + counter).
  std::uint64_t hash_words(std::uint64_t a, std::uint64_t b) const {
    detail::SipState s = init();
    s.compress(a);
    s.compress(b);
    s.compress(std::uint64_t{16} << 56);
    return s.finalize();
  }

  /// Hash of `data` (whose size must be a multiple of 8) followed by
  /// `nwords` trailing words — identical to hash() over the concatenated
  /// buffer, without assembling one. This is the composite-MAC hot path
  /// (node payload + address + counter, ciphertext + address + counters).
  std::uint64_t hash_concat(std::span<const std::uint8_t> data, const std::uint64_t* words,
                            std::size_t nwords) const {
    detail::SipState s = init();
    const std::size_t n = data.size();
    for (std::size_t off = 0; off < n; off += 8) {
      s.compress(detail::load_le64(data.data() + off));
    }
    for (std::size_t i = 0; i < nwords; ++i) s.compress(words[i]);
    const std::uint64_t total = n + 8 * nwords;
    s.compress((total & 0xff) << 56);
    return s.finalize();
  }

 private:
  detail::SipState init() const {
    return {0x736f6d6570736575ULL ^ k0_, 0x646f72616e646f6dULL ^ k1_,
            0x6c7967656e657261ULL ^ k0_, 0x7465646279746573ULL ^ k1_};
  }

  std::uint64_t k0_, k1_;
};

}  // namespace steins::crypto

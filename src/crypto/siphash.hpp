// SipHash-2-4 (Aumasson & Bernstein): a fast keyed 64-bit PRF.
//
// Used by the kFast crypto profile as the MAC and OTP primitive so that the
// figure benches run quickly on one core; the control flow, traffic, and
// modeled latency are identical to the real AES/HMAC profile.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace steins::crypto {

class SipHash24 {
 public:
  using Key = std::array<std::uint8_t, 16>;

  explicit SipHash24(const Key& key);

  /// 64-bit keyed hash of `data`.
  std::uint64_t hash(std::span<const std::uint8_t> data) const;

  /// 64-bit keyed hash of two machine words (hot path: address + counter).
  std::uint64_t hash_words(std::uint64_t a, std::uint64_t b) const;

 private:
  std::uint64_t k0_, k1_;
};

}  // namespace steins::crypto

// SHA-256 (FIPS 180-4), implemented from scratch. Streaming interface plus
// one-shot and midstate helpers. Used by HMAC-SHA256 in the real crypto
// profile.
//
// The 64-round compression dispatches through the crypto backend registry:
// the hw backend uses the SHA-NI compress (crypto/sha_ni.cpp) when CPUID
// reports the SHA extensions, everything else the scalar rounds below. Both
// are bit-identical.
//
// The exposed State/compress/resume-constructor trio exists for HMAC
// midstate caching: HmacSha256 compresses its ipad/opad blocks once at key
// setup and resumes from the saved 8-word states on every tag.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "crypto/backend.hpp"

namespace steins::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestBytes = 32;
  static constexpr std::size_t kBlockBytes = 64;
  using Digest = std::array<std::uint8_t, kDigestBytes>;
  /// The 8-word working state (a..h) between compressions.
  using State = std::array<std::uint32_t, 8>;

  Sha256() { reset(); }

  /// Pinned to one backend regardless of the registry (tests and
  /// per-backend benchmarks).
  explicit Sha256(CryptoBackend backend) : backend_(backend) { reset(); }

  /// Resume from a midstate: `state` after `bytes_compressed` bytes
  /// (a multiple of 64) have already been absorbed.
  explicit Sha256(const State& state, std::uint64_t bytes_compressed,
                  std::optional<CryptoBackend> backend = std::nullopt)
      : backend_(backend), state_(state), total_len_(bytes_compressed) {}

  void reset();
  void update(std::span<const std::uint8_t> data);
  Digest finalize();

  /// FIPS 180-4 initial hash value H(0).
  static State initial_state();

  /// state = compress(state, one 64-byte block), dispatched per the
  /// registry (or pinned via `backend`).
  static void compress(State& state, const std::uint8_t* block,
                       std::optional<CryptoBackend> backend = std::nullopt);

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data) {
    Sha256 h;
    h.update(data);
    return h.finalize();
  }

 private:
  void process_block(const std::uint8_t* block) { compress(state_, block, backend_); }

  // nullopt = follow the process-wide registry at call time.
  std::optional<CryptoBackend> backend_;
  State state_{};
  std::array<std::uint8_t, kBlockBytes> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace steins::crypto

// SHA-256 (FIPS 180-4), implemented from scratch. Streaming interface plus a
// one-shot helper. Used by HMAC-SHA256 in the real crypto profile.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace steins::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestBytes = 32;
  using Digest = std::array<std::uint8_t, kDigestBytes>;

  Sha256() { reset(); }

  void reset();
  void update(std::span<const std::uint8_t> data);
  Digest finalize();

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data) {
    Sha256 h;
    h.update(data);
    return h.finalize();
  }

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace steins::crypto

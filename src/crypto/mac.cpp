#include "crypto/mac.hpp"

#include <cstring>

#include "common/status.hpp"

namespace steins::crypto {

MacEngine::MacEngine(CryptoProfile profile, std::uint64_t key_seed,
                     std::optional<CryptoBackend> backend)
    : profile_(profile) {
  constexpr std::uint64_t kMacDomain = 0x4d41435f4b455931ULL;  // "MAC_KEY1"
  std::uint8_t key[16];
  std::memcpy(key, &key_seed, 8);
  std::memcpy(key + 8, &kMacDomain, 8);
  if (profile_ == CryptoProfile::kReal) {
    hmac_ = std::make_unique<HmacSha256>(std::span<const std::uint8_t>{key, 16}, backend);
  } else {
    SipHash24::Key k{};
    std::memcpy(k.data(), key, 16);
    sip_ = std::make_unique<SipHash24>(k);
  }
}

std::uint64_t MacEngine::mac64(std::span<const std::uint8_t> data) const {
  if (profile_ == CryptoProfile::kReal) return hmac_->tag64(data);
  return sip_->hash(data);
}

// MAC input assembly is allocation-free by design: both composite MACs
// build their message in a fixed stack buffer sized for the worst case.
// Keep it that way — these run once per simulated memory access.

std::uint64_t MacEngine::node_mac(std::span<const std::uint8_t> payload, Addr node_addr,
                                  std::uint64_t parent_counter) const {
  const std::size_t n = payload.size();
  if (profile_ != CryptoProfile::kReal && (n % 8) == 0) {
    // SipHash can stream the 8-aligned payload and trailing words directly
    // — same message bytes, same tag, no staging copy.
    const std::uint64_t words[2] = {node_addr, parent_counter};
    return sip_->hash_concat(payload, words, 2);
  }
  std::uint8_t buf[72];  // up to 56 B payload + addr + parent counter
  STEINS_CHECK(n + 16 <= sizeof(buf), "node_mac payload exceeds the stack buffer");
  std::memcpy(buf, payload.data(), n);
  std::memcpy(buf + n, &node_addr, 8);
  std::memcpy(buf + n + 8, &parent_counter, 8);
  return mac64({buf, n + 16});
}

std::uint64_t MacEngine::data_mac(const Block& ciphertext, Addr addr, std::uint64_t counter,
                                  std::uint64_t aux) const {
  if (profile_ != CryptoProfile::kReal) {
    const std::uint64_t words[3] = {addr, counter, aux};
    return sip_->hash_concat({ciphertext.data(), kBlockSize}, words, 3);
  }
  std::uint8_t buf[kBlockSize + 24];
  std::memcpy(buf, ciphertext.data(), kBlockSize);
  std::memcpy(buf + kBlockSize, &addr, 8);
  std::memcpy(buf + kBlockSize + 8, &counter, 8);
  std::memcpy(buf + kBlockSize + 16, &aux, 8);
  return mac64({buf, sizeof(buf)});
}

}  // namespace steins::crypto

#include "crypto/otp.hpp"

#include <cstring>

#include "common/status.hpp"

namespace steins::crypto {

namespace {

Aes128::Key key_from_seed(std::uint64_t seed, std::uint64_t domain) {
  Aes128::Key k{};
  std::memcpy(k.data(), &seed, 8);
  std::memcpy(k.data() + 8, &domain, 8);
  return k;
}

}  // namespace

OtpEngine::OtpEngine(CryptoProfile profile, std::uint64_t key_seed, PadDomain domain,
                     std::optional<CryptoBackend> backend)
    : profile_(profile), domain_(domain) {
  // Domain-separate the OTP key from MAC keys derived from the same seed
  // (and v1 pads from v2 pads: the domain constant is part of the key).
  const std::uint64_t otp_domain = static_cast<std::uint64_t>(domain_);
  if (profile_ == CryptoProfile::kReal) {
    const Aes128::Key key = key_from_seed(key_seed, otp_domain);
    aes_ = backend ? std::make_unique<Aes128>(key, *backend)
                   : std::make_unique<Aes128>(key);
  } else {
    SipHash24::Key k{};
    std::memcpy(k.data(), &key_seed, 8);
    std::memcpy(k.data() + 8, &otp_domain, 8);
    sip_ = std::make_unique<SipHash24>(k);
  }
}

Block OtpEngine::pad(Addr addr, std::uint64_t counter) const {
  Block out{};
  if (profile_ == CryptoProfile::kReal) {
    // CTR mode: all 4 lane inputs are assembled into the output buffer and
    // encrypted in place with one 4-lane kernel call (AES-NI pipelines the
    // rounds across lanes; software backends loop).
    if (domain_ == PadDomain::kV1) {
      // Legacy layout: E_K(addr || counter ^ (i << 60)); kept only so
      // pre-v2 traces stay decodable.
      for (std::uint64_t i = 0; i < 4; ++i) {
        std::uint8_t* in = out.data() + i * Aes128::kBlockBytes;
        std::memcpy(in, &addr, 8);
        const std::uint64_t ctr_i = counter ^ (i << 60);
        std::memcpy(in + 8, &ctr_i, 8);
      }
    } else {
      // v2 layout: E_K(addr[0..6] || lane || counter). The lane index
      // occupies the address word's unused top byte, leaving the counter
      // intact so lanes cannot alias for any counter value.
      STEINS_CHECK(addr < (1ULL << 56), "OTP v2 pad: block address exceeds 56 bits");
      for (std::uint64_t i = 0; i < 4; ++i) {
        std::uint8_t* in = out.data() + i * Aes128::kBlockBytes;
        std::memcpy(in, &addr, 8);
        in[7] = static_cast<std::uint8_t>(i);
        std::memcpy(in + 8, &counter, 8);
      }
    }
    aes_->encrypt4(out.data());
  } else {
    for (std::uint64_t i = 0; i < 8; ++i) {
      const std::uint64_t w = sip_->hash_words(addr + (i << 56), counter);
      std::memcpy(out.data() + i * 8, &w, 8);
    }
  }
  return out;
}

}  // namespace steins::crypto

#include "crypto/otp.hpp"

#include <cstring>

namespace steins::crypto {

namespace {

Aes128::Key key_from_seed(std::uint64_t seed, std::uint64_t domain) {
  Aes128::Key k{};
  std::memcpy(k.data(), &seed, 8);
  std::memcpy(k.data() + 8, &domain, 8);
  return k;
}

}  // namespace

OtpEngine::OtpEngine(CryptoProfile profile, std::uint64_t key_seed) : profile_(profile) {
  // Domain-separate the OTP key from MAC keys derived from the same seed.
  constexpr std::uint64_t kOtpDomain = 0x4f54505f4b455931ULL;  // "OTP_KEY1"
  if (profile_ == CryptoProfile::kReal) {
    aes_ = std::make_unique<Aes128>(key_from_seed(key_seed, kOtpDomain));
  } else {
    SipHash24::Key k{};
    std::memcpy(k.data(), &key_seed, 8);
    std::memcpy(k.data() + 8, &kOtpDomain, 8);
    sip_ = std::make_unique<SipHash24>(k);
  }
}

Block OtpEngine::pad(Addr addr, std::uint64_t counter) const {
  Block out{};
  if (profile_ == CryptoProfile::kReal) {
    // CTR mode: E_K(addr || counter || i) for i in 0..3, 16 B each.
    for (std::uint64_t i = 0; i < 4; ++i) {
      Aes128::BlockBytes in{};
      std::memcpy(in.data(), &addr, 8);
      const std::uint64_t ctr_i = counter ^ (i << 60);
      std::memcpy(in.data() + 8, &ctr_i, 8);
      const auto enc = aes_->encrypt(in);
      std::memcpy(out.data() + i * 16, enc.data(), 16);
    }
  } else {
    for (std::uint64_t i = 0; i < 8; ++i) {
      const std::uint64_t w = sip_->hash_words(addr + (i << 56), counter);
      std::memcpy(out.data() + i * 8, &w, 8);
    }
  }
  return out;
}

}  // namespace steins::crypto

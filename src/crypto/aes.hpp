// AES-128 block cipher (FIPS-197), implemented from scratch.
//
// Used by the counter-mode encryption engine (CME) to derive one-time pads
// from (address, counter) tuples. Software S-box implementation: this is a
// functional-correctness reference; the simulator models AES latency
// separately (SecureConfig::aes_latency_cycles).
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace steins::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockBytes = 16;
  static constexpr std::size_t kKeyBytes = 16;
  static constexpr unsigned kRounds = 10;

  using Key = std::array<std::uint8_t, kKeyBytes>;
  using BlockBytes = std::array<std::uint8_t, kBlockBytes>;

  explicit Aes128(const Key& key) { expand_key(key); }

  /// Encrypt one 16-byte block in place.
  void encrypt_block(std::uint8_t* block) const;

  /// Decrypt one 16-byte block in place.
  void decrypt_block(std::uint8_t* block) const;

  BlockBytes encrypt(const BlockBytes& in) const {
    BlockBytes out = in;
    encrypt_block(out.data());
    return out;
  }

  BlockBytes decrypt(const BlockBytes& in) const {
    BlockBytes out = in;
    decrypt_block(out.data());
    return out;
  }

 private:
  void expand_key(const Key& key);

  // Round keys: (kRounds + 1) x 16 bytes.
  std::array<std::uint8_t, (kRounds + 1) * kBlockBytes> round_keys_{};
};

}  // namespace steins::crypto

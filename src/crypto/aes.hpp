// AES-128 block cipher (FIPS-197), implemented from scratch.
//
// Used by the counter-mode encryption engine (CME) to derive one-time pads
// from (address, counter) tuples. Two implementations share one key
// schedule:
//
//  - the T-table path (default): 4 constexpr-generated 1 KB lookup tables
//    fold SubBytes+ShiftRows+MixColumns into 16 table lookups + XORs per
//    round (Rijndael's 32-bit software formulation) — ~an order of
//    magnitude faster than the byte-wise path, which matters because the
//    `kReal` crypto profile runs 4 AES blocks per simulated memory access;
//  - the byte-wise FIPS-197 reference path (`encrypt_block_ref` /
//    `decrypt_block_ref`): kept for verification; tests cross-check the two
//    on the NIST vectors and randomized blocks. Define STEINS_AES_REFERENCE
//    at compile time to route encrypt_block/decrypt_block through it.
//
// The simulator models AES latency separately
// (SecureConfig::aes_latency_cycles); this only affects host wall-clock.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace steins::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockBytes = 16;
  static constexpr std::size_t kKeyBytes = 16;
  static constexpr unsigned kRounds = 10;

  using Key = std::array<std::uint8_t, kKeyBytes>;
  using BlockBytes = std::array<std::uint8_t, kBlockBytes>;

  explicit Aes128(const Key& key) { expand_key(key); }

  /// Encrypt one 16-byte block in place.
  void encrypt_block(std::uint8_t* block) const;

  /// Decrypt one 16-byte block in place.
  void decrypt_block(std::uint8_t* block) const;

  /// Byte-wise FIPS-197 reference implementations (verification only).
  void encrypt_block_ref(std::uint8_t* block) const;
  void decrypt_block_ref(std::uint8_t* block) const;

  BlockBytes encrypt(const BlockBytes& in) const {
    BlockBytes out = in;
    encrypt_block(out.data());
    return out;
  }

  BlockBytes decrypt(const BlockBytes& in) const {
    BlockBytes out = in;
    decrypt_block(out.data());
    return out;
  }

  /// One-shot self check: T-table and reference paths agree on the FIPS-197
  /// known-answer vectors. Cheap enough to call from main() or tests.
  static bool self_check();

 private:
  void expand_key(const Key& key);

  // Round keys as bytes: (kRounds + 1) x 16, used by the reference path.
  std::array<std::uint8_t, (kRounds + 1) * kBlockBytes> round_keys_{};
  // The same schedule as big-endian 32-bit column words for the T-table
  // path, plus the equivalent-inverse-cipher schedule (InvMixColumns
  // applied to the middle rounds) for T-table decryption.
  std::array<std::uint32_t, (kRounds + 1) * 4> enc_rk_{};
  std::array<std::uint32_t, (kRounds + 1) * 4> dec_rk_{};
};

}  // namespace steins::crypto

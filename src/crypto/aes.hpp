// AES-128 block cipher (FIPS-197), implemented from scratch.
//
// Used by the counter-mode encryption engine (CME) to derive one-time pads
// from (address, counter) tuples. Three backends share one key schedule
// (see crypto/backend.hpp for the dispatch registry):
//
//  - `hw` (default where CPUID reports AES-NI): hardware AES rounds; the
//    4-block CTR kernel pipelines the rounds across all four lanes
//    (crypto/aes_ni.cpp), modeling the controller-resident AES engine that
//    secure-NVM designs assume;
//  - `ttable`: 4 constexpr-generated 1 KB lookup tables fold
//    SubBytes+ShiftRows+MixColumns into 16 table lookups + XORs per round
//    (Rijndael's 32-bit software formulation) — the portable fast path;
//  - `ref`: the byte-wise FIPS-197 reference path (`encrypt_block_ref` /
//    `decrypt_block_ref`), kept for verification; tests cross-check every
//    backend pair on the NIST vectors and randomized blocks. Define
//    STEINS_AES_REFERENCE at compile time to force it everywhere.
//
// All backends are bit-identical; the simulator models AES latency
// separately (SecureConfig::aes_latency_cycles), so the backend only
// affects host wall-clock.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "crypto/backend.hpp"

namespace steins::crypto {

class Aes128 {
 public:
  static constexpr std::size_t kBlockBytes = 16;
  static constexpr std::size_t kKeyBytes = 16;
  static constexpr unsigned kRounds = 10;

  using Key = std::array<std::uint8_t, kKeyBytes>;
  using BlockBytes = std::array<std::uint8_t, kBlockBytes>;

  /// Follows the process-wide active backend (crypto/backend.hpp) on every
  /// call, so a `--crypto-backend` override reaches existing engines too.
  explicit Aes128(const Key& key) { expand_key(key); }

  /// Pinned to one backend regardless of the registry (tests and
  /// per-backend benchmarks). Requests for an unavailable hw backend fall
  /// back to ttable.
  Aes128(const Key& key, CryptoBackend backend) : backend_(backend) {
    if (backend_ == CryptoBackend::kHw && !aes_hw_available()) {
      backend_ = CryptoBackend::kTtable;
    }
    expand_key(key);
  }

  /// The backend calls dispatch to right now.
  CryptoBackend backend() const { return backend_ ? *backend_ : active_backend(); }

  /// Encrypt one 16-byte block in place.
  void encrypt_block(std::uint8_t* block) const;

  /// Encrypt 4 contiguous 16-byte blocks in place. The hw backend runs the
  /// 4-lane pipelined AES-NI kernel (one `aesenc` per lane per round,
  /// interleaved to hide instruction latency); software backends loop over
  /// encrypt_block. This is the OTP CTR hot path.
  void encrypt4(std::uint8_t* blocks) const;

  /// Decrypt one 16-byte block in place.
  void decrypt_block(std::uint8_t* block) const;

  /// Byte-wise FIPS-197 reference implementations (verification only).
  void encrypt_block_ref(std::uint8_t* block) const;
  void decrypt_block_ref(std::uint8_t* block) const;

  BlockBytes encrypt(const BlockBytes& in) const {
    BlockBytes out = in;
    encrypt_block(out.data());
    return out;
  }

  BlockBytes decrypt(const BlockBytes& in) const {
    BlockBytes out = in;
    decrypt_block(out.data());
    return out;
  }

  /// One-shot self check: T-table and reference paths agree on the FIPS-197
  /// known-answer vectors. Cheap enough to call from main() or tests.
  /// (crypto_self_check() in backend.hpp extends this across all backends.)
  static bool self_check();

 private:
  void expand_key(const Key& key);

  void encrypt_block_ttable(std::uint8_t* block) const;
  void decrypt_block_ttable(std::uint8_t* block) const;

  // nullopt = follow the process-wide registry at call time.
  std::optional<CryptoBackend> backend_;

  // Round keys as bytes: (kRounds + 1) x 16, used by the reference path.
  std::array<std::uint8_t, (kRounds + 1) * kBlockBytes> round_keys_{};
  // The same schedule as big-endian 32-bit column words for the T-table
  // path, plus the equivalent-inverse-cipher schedule (InvMixColumns
  // applied to the middle rounds) for T-table decryption.
  std::array<std::uint32_t, (kRounds + 1) * 4> enc_rk_{};
  std::array<std::uint32_t, (kRounds + 1) * 4> dec_rk_{};
};

}  // namespace steins::crypto

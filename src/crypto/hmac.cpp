#include "crypto/hmac.hpp"

#include <cstring>

namespace steins::crypto {

HmacSha256::HmacSha256(std::span<const std::uint8_t> key,
                       std::optional<CryptoBackend> backend)
    : backend_(backend) {
  std::array<std::uint8_t, Sha256::kBlockBytes> k{};
  if (key.size() > k.size()) {
    const auto digest = Sha256::hash(key);
    std::memcpy(k.data(), digest.data(), digest.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, Sha256::kBlockBytes> pad;
  for (std::size_t i = 0; i < pad.size(); ++i) {
    pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
  }
  inner_mid_ = Sha256::initial_state();
  Sha256::compress(inner_mid_, pad.data(), backend_);

  for (std::size_t i = 0; i < pad.size(); ++i) {
    pad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  outer_mid_ = Sha256::initial_state();
  Sha256::compress(outer_mid_, pad.data(), backend_);
}

HmacSha256::Tag HmacSha256::tag(std::span<const std::uint8_t> data) const {
  Sha256 inner(inner_mid_, Sha256::kBlockBytes, backend_);
  inner.update(data);
  const auto inner_digest = inner.finalize();

  Sha256 outer(outer_mid_, Sha256::kBlockBytes, backend_);
  outer.update(inner_digest);
  return outer.finalize();
}

std::uint64_t HmacSha256::tag64(std::span<const std::uint8_t> data) const {
  const Tag t = tag(data);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | t[i];
  return v;
}

}  // namespace steins::crypto

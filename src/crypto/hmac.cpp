#include "crypto/hmac.hpp"

#include <cstring>

namespace steins::crypto {

HmacSha256::HmacSha256(std::span<const std::uint8_t> key) {
  std::array<std::uint8_t, 64> k{};
  if (key.size() > 64) {
    const auto digest = Sha256::hash(key);
    std::memcpy(k.data(), digest.data(), digest.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }
  for (std::size_t i = 0; i < 64; ++i) {
    ipad_key_[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad_key_[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
}

HmacSha256::Tag HmacSha256::tag(std::span<const std::uint8_t> data) const {
  Sha256 inner;
  inner.update(ipad_key_);
  inner.update(data);
  const auto inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad_key_);
  outer.update(inner_digest);
  return outer.finalize();
}

std::uint64_t HmacSha256::tag64(std::span<const std::uint8_t> data) const {
  const Tag t = tag(data);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | t[i];
  return v;
}

}  // namespace steins::crypto

#include "crypto/aes.hpp"

#include <cstring>

#include "crypto/aes_ni.hpp"

namespace steins::crypto {

namespace {

// FIPS-197 S-box and inverse S-box.
constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab,
    0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4,
    0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71,
    0xd8, 0x31, 0x15, 0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6,
    0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb,
    0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf, 0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45,
    0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44,
    0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73, 0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a,
    0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49,
    0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08, 0xba, 0x78, 0x25,
    0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e,
    0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1,
    0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb,
    0x16};

constexpr std::uint8_t kInvSbox[256] = {
    0x52, 0x09, 0x6a, 0xd5, 0x30, 0x36, 0xa5, 0x38, 0xbf, 0x40, 0xa3, 0x9e, 0x81, 0xf3, 0xd7,
    0xfb, 0x7c, 0xe3, 0x39, 0x82, 0x9b, 0x2f, 0xff, 0x87, 0x34, 0x8e, 0x43, 0x44, 0xc4, 0xde,
    0xe9, 0xcb, 0x54, 0x7b, 0x94, 0x32, 0xa6, 0xc2, 0x23, 0x3d, 0xee, 0x4c, 0x95, 0x0b, 0x42,
    0xfa, 0xc3, 0x4e, 0x08, 0x2e, 0xa1, 0x66, 0x28, 0xd9, 0x24, 0xb2, 0x76, 0x5b, 0xa2, 0x49,
    0x6d, 0x8b, 0xd1, 0x25, 0x72, 0xf8, 0xf6, 0x64, 0x86, 0x68, 0x98, 0x16, 0xd4, 0xa4, 0x5c,
    0xcc, 0x5d, 0x65, 0xb6, 0x92, 0x6c, 0x70, 0x48, 0x50, 0xfd, 0xed, 0xb9, 0xda, 0x5e, 0x15,
    0x46, 0x57, 0xa7, 0x8d, 0x9d, 0x84, 0x90, 0xd8, 0xab, 0x00, 0x8c, 0xbc, 0xd3, 0x0a, 0xf7,
    0xe4, 0x58, 0x05, 0xb8, 0xb3, 0x45, 0x06, 0xd0, 0x2c, 0x1e, 0x8f, 0xca, 0x3f, 0x0f, 0x02,
    0xc1, 0xaf, 0xbd, 0x03, 0x01, 0x13, 0x8a, 0x6b, 0x3a, 0x91, 0x11, 0x41, 0x4f, 0x67, 0xdc,
    0xea, 0x97, 0xf2, 0xcf, 0xce, 0xf0, 0xb4, 0xe6, 0x73, 0x96, 0xac, 0x74, 0x22, 0xe7, 0xad,
    0x35, 0x85, 0xe2, 0xf9, 0x37, 0xe8, 0x1c, 0x75, 0xdf, 0x6e, 0x47, 0xf1, 0x1a, 0x71, 0x1d,
    0x29, 0xc5, 0x89, 0x6f, 0xb7, 0x62, 0x0e, 0xaa, 0x18, 0xbe, 0x1b, 0xfc, 0x56, 0x3e, 0x4b,
    0xc6, 0xd2, 0x79, 0x20, 0x9a, 0xdb, 0xc0, 0xfe, 0x78, 0xcd, 0x5a, 0xf4, 0x1f, 0xdd, 0xa8,
    0x33, 0x88, 0x07, 0xc7, 0x31, 0xb1, 0x12, 0x10, 0x59, 0x27, 0x80, 0xec, 0x5f, 0x60, 0x51,
    0x7f, 0xa9, 0x19, 0xb5, 0x4a, 0x0d, 0x2d, 0xe5, 0x7a, 0x9f, 0x93, 0xc9, 0x9c, 0xef, 0xa0,
    0xe0, 0x3b, 0x4d, 0xae, 0x2a, 0xf5, 0xb0, 0xc8, 0xeb, 0xbb, 0x3c, 0x83, 0x53, 0x99, 0x61,
    0x17, 0x2b, 0x04, 0x7e, 0xba, 0x77, 0xd6, 0x26, 0xe1, 0x69, 0x14, 0x63, 0x55, 0x21, 0x0c,
    0x7d};

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

// GF(2^8) multiply by x (i.e. {02}).
inline constexpr std::uint8_t xtime(std::uint8_t a) {
  return static_cast<std::uint8_t>((a << 1) ^ ((a & 0x80) ? 0x1b : 0x00));
}

inline constexpr std::uint8_t gmul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = xtime(a);
    b >>= 1;
  }
  return p;
}

// T-tables for the 32-bit software formulation (Rijndael proposal §5.2.1).
// Each encryption table maps one state byte to its column contribution
// after SubBytes+ShiftRows+MixColumns; Te_r is Te0 rotated right by 8*r
// bits, matching the byte's row. Td tables are the inverse-cipher
// equivalents over the inverse S-box and the InvMixColumns coefficients.
// Generated at compile time from the S-boxes — nothing to keep in sync.
struct AesTables {
  std::uint32_t Te[4][256];
  std::uint32_t Td[4][256];
};

constexpr std::uint32_t rotr32(std::uint32_t v, int r) {
  return r == 0 ? v : (v >> r) | (v << (32 - r));
}

constexpr AesTables make_tables() {
  AesTables t{};
  for (unsigned i = 0; i < 256; ++i) {
    const std::uint8_t s = kSbox[i];
    // MixColumns column for an input byte in row 0: (2s, s, s, 3s).
    const std::uint32_t e = (static_cast<std::uint32_t>(gmul(s, 2)) << 24) |
                            (static_cast<std::uint32_t>(s) << 16) |
                            (static_cast<std::uint32_t>(s) << 8) |
                            static_cast<std::uint32_t>(gmul(s, 3));
    const std::uint8_t is = kInvSbox[i];
    // InvMixColumns column for row 0: (0e, 09, 0d, 0b) * is.
    const std::uint32_t d = (static_cast<std::uint32_t>(gmul(is, 0x0e)) << 24) |
                            (static_cast<std::uint32_t>(gmul(is, 0x09)) << 16) |
                            (static_cast<std::uint32_t>(gmul(is, 0x0d)) << 8) |
                            static_cast<std::uint32_t>(gmul(is, 0x0b));
    for (int r = 0; r < 4; ++r) {
      t.Te[r][i] = rotr32(e, 8 * r);
      t.Td[r][i] = rotr32(d, 8 * r);
    }
  }
  return t;
}

constexpr AesTables kT = make_tables();

// Column c of the state as a big-endian word (row 0 in the MSB).
inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

// InvMixColumns on one round-key word (equivalent inverse cipher key prep).
inline std::uint32_t inv_mix_word(std::uint32_t w) {
  const std::uint8_t b0 = static_cast<std::uint8_t>(w >> 24);
  const std::uint8_t b1 = static_cast<std::uint8_t>(w >> 16);
  const std::uint8_t b2 = static_cast<std::uint8_t>(w >> 8);
  const std::uint8_t b3 = static_cast<std::uint8_t>(w);
  const auto mix = [](std::uint8_t a0, std::uint8_t a1, std::uint8_t a2, std::uint8_t a3) {
    return static_cast<std::uint8_t>(gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^
                                     gmul(a3, 0x09));
  };
  return (static_cast<std::uint32_t>(mix(b0, b1, b2, b3)) << 24) |
         (static_cast<std::uint32_t>(mix(b1, b2, b3, b0)) << 16) |
         (static_cast<std::uint32_t>(mix(b2, b3, b0, b1)) << 8) |
         static_cast<std::uint32_t>(mix(b3, b0, b1, b2));
}

}  // namespace

void Aes128::expand_key(const Key& key) {
  std::memcpy(round_keys_.data(), key.data(), kKeyBytes);
  for (unsigned i = 4; i < 4 * (kRounds + 1); ++i) {
    std::uint8_t t[4];
    std::memcpy(t, &round_keys_[(i - 1) * 4], 4);
    if (i % 4 == 0) {
      // RotWord + SubWord + Rcon.
      const std::uint8_t tmp = t[0];
      t[0] = static_cast<std::uint8_t>(kSbox[t[1]] ^ kRcon[i / 4 - 1]);
      t[1] = kSbox[t[2]];
      t[2] = kSbox[t[3]];
      t[3] = kSbox[tmp];
    }
    for (int j = 0; j < 4; ++j) {
      round_keys_[i * 4 + j] = round_keys_[(i - 4) * 4 + j] ^ t[j];
    }
  }

  // Word-form schedules for the T-table paths. Encryption words are the
  // byte schedule read big-endian per column; the decryption schedule is
  // the equivalent inverse cipher's: round order reversed, InvMixColumns
  // applied to every round key except the first and last.
  for (unsigned i = 0; i < 4 * (kRounds + 1); ++i) {
    enc_rk_[i] = load_be32(&round_keys_[i * 4]);
  }
  for (unsigned round = 0; round <= kRounds; ++round) {
    for (unsigned c = 0; c < 4; ++c) {
      std::uint32_t w = enc_rk_[(kRounds - round) * 4 + c];
      if (round != 0 && round != kRounds) w = inv_mix_word(w);
      dec_rk_[round * 4 + c] = w;
    }
  }
}

void Aes128::encrypt_block(std::uint8_t* s) const {
#ifdef STEINS_AES_REFERENCE
  encrypt_block_ref(s);
#else
  switch (backend()) {
    case CryptoBackend::kHw:
      aesni::encrypt_block(round_keys_.data(), s);
      return;
    case CryptoBackend::kRef:
      encrypt_block_ref(s);
      return;
    case CryptoBackend::kTtable:
      encrypt_block_ttable(s);
      return;
  }
#endif
}

void Aes128::encrypt4(std::uint8_t* blocks) const {
#ifndef STEINS_AES_REFERENCE
  if (backend() == CryptoBackend::kHw) {
    aesni::encrypt4(round_keys_.data(), blocks);
    return;
  }
#endif
  for (int i = 0; i < 4; ++i) encrypt_block(blocks + i * kBlockBytes);
}

void Aes128::encrypt_block_ttable(std::uint8_t* s) const {
  const std::uint32_t* rk = enc_rk_.data();
  std::uint32_t s0 = load_be32(s) ^ rk[0];
  std::uint32_t s1 = load_be32(s + 4) ^ rk[1];
  std::uint32_t s2 = load_be32(s + 8) ^ rk[2];
  std::uint32_t s3 = load_be32(s + 12) ^ rk[3];

  for (unsigned round = 1; round < kRounds; ++round) {
    rk += 4;
    // ShiftRows left-rotates row r by r columns, so output column c pulls
    // row r from column (c + r) mod 4.
    const std::uint32_t t0 = kT.Te[0][s0 >> 24] ^ kT.Te[1][(s1 >> 16) & 0xff] ^
                             kT.Te[2][(s2 >> 8) & 0xff] ^ kT.Te[3][s3 & 0xff] ^ rk[0];
    const std::uint32_t t1 = kT.Te[0][s1 >> 24] ^ kT.Te[1][(s2 >> 16) & 0xff] ^
                             kT.Te[2][(s3 >> 8) & 0xff] ^ kT.Te[3][s0 & 0xff] ^ rk[1];
    const std::uint32_t t2 = kT.Te[0][s2 >> 24] ^ kT.Te[1][(s3 >> 16) & 0xff] ^
                             kT.Te[2][(s0 >> 8) & 0xff] ^ kT.Te[3][s1 & 0xff] ^ rk[2];
    const std::uint32_t t3 = kT.Te[0][s3 >> 24] ^ kT.Te[1][(s0 >> 16) & 0xff] ^
                             kT.Te[2][(s1 >> 8) & 0xff] ^ kT.Te[3][s2 & 0xff] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  rk += 4;
  // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
  const auto last = [](std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d) {
    return (static_cast<std::uint32_t>(kSbox[a >> 24]) << 24) |
           (static_cast<std::uint32_t>(kSbox[(b >> 16) & 0xff]) << 16) |
           (static_cast<std::uint32_t>(kSbox[(c >> 8) & 0xff]) << 8) |
           static_cast<std::uint32_t>(kSbox[d & 0xff]);
  };
  store_be32(s, last(s0, s1, s2, s3) ^ rk[0]);
  store_be32(s + 4, last(s1, s2, s3, s0) ^ rk[1]);
  store_be32(s + 8, last(s2, s3, s0, s1) ^ rk[2]);
  store_be32(s + 12, last(s3, s0, s1, s2) ^ rk[3]);
}

void Aes128::decrypt_block(std::uint8_t* s) const {
#ifdef STEINS_AES_REFERENCE
  decrypt_block_ref(s);
#else
  switch (backend()) {
    case CryptoBackend::kHw:
      aesni::decrypt_block(round_keys_.data(), s);
      return;
    case CryptoBackend::kRef:
      decrypt_block_ref(s);
      return;
    case CryptoBackend::kTtable:
      decrypt_block_ttable(s);
      return;
  }
#endif
}

void Aes128::decrypt_block_ttable(std::uint8_t* s) const {
  const std::uint32_t* rk = dec_rk_.data();
  std::uint32_t s0 = load_be32(s) ^ rk[0];
  std::uint32_t s1 = load_be32(s + 4) ^ rk[1];
  std::uint32_t s2 = load_be32(s + 8) ^ rk[2];
  std::uint32_t s3 = load_be32(s + 12) ^ rk[3];

  for (unsigned round = 1; round < kRounds; ++round) {
    rk += 4;
    // InvShiftRows right-rotates row r by r, so output column c pulls row r
    // from column (c - r) mod 4.
    const std::uint32_t t0 = kT.Td[0][s0 >> 24] ^ kT.Td[1][(s3 >> 16) & 0xff] ^
                             kT.Td[2][(s2 >> 8) & 0xff] ^ kT.Td[3][s1 & 0xff] ^ rk[0];
    const std::uint32_t t1 = kT.Td[0][s1 >> 24] ^ kT.Td[1][(s0 >> 16) & 0xff] ^
                             kT.Td[2][(s3 >> 8) & 0xff] ^ kT.Td[3][s2 & 0xff] ^ rk[1];
    const std::uint32_t t2 = kT.Td[0][s2 >> 24] ^ kT.Td[1][(s1 >> 16) & 0xff] ^
                             kT.Td[2][(s0 >> 8) & 0xff] ^ kT.Td[3][s3 & 0xff] ^ rk[2];
    const std::uint32_t t3 = kT.Td[0][s3 >> 24] ^ kT.Td[1][(s2 >> 16) & 0xff] ^
                             kT.Td[2][(s1 >> 8) & 0xff] ^ kT.Td[3][s0 & 0xff] ^ rk[3];
    s0 = t0;
    s1 = t1;
    s2 = t2;
    s3 = t3;
  }

  rk += 4;
  const auto last = [](std::uint32_t a, std::uint32_t b, std::uint32_t c, std::uint32_t d) {
    return (static_cast<std::uint32_t>(kInvSbox[a >> 24]) << 24) |
           (static_cast<std::uint32_t>(kInvSbox[(b >> 16) & 0xff]) << 16) |
           (static_cast<std::uint32_t>(kInvSbox[(c >> 8) & 0xff]) << 8) |
           static_cast<std::uint32_t>(kInvSbox[d & 0xff]);
  };
  store_be32(s, last(s0, s3, s2, s1) ^ rk[0]);
  store_be32(s + 4, last(s1, s0, s3, s2) ^ rk[1]);
  store_be32(s + 8, last(s2, s1, s0, s3) ^ rk[2]);
  store_be32(s + 12, last(s3, s2, s1, s0) ^ rk[3]);
}

bool Aes128::self_check() {
  // FIPS-197 Appendix C.1: key 000102...0f, pt 00112233445566778899aabbccddeeff.
  Key key{};
  BlockBytes pt{};
  for (std::size_t i = 0; i < kKeyBytes; ++i) key[i] = static_cast<std::uint8_t>(i);
  for (std::size_t i = 0; i < kBlockBytes; ++i) {
    pt[i] = static_cast<std::uint8_t>(i * 0x11);
  }
  constexpr BlockBytes expect{0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                              0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  const Aes128 aes(key);

  BlockBytes fast = pt;
  aes.encrypt_block(fast.data());
  BlockBytes ref = pt;
  aes.encrypt_block_ref(ref.data());
  if (fast != expect || ref != expect) return false;

  aes.decrypt_block(fast.data());
  aes.decrypt_block_ref(ref.data());
  return fast == pt && ref == pt;
}

void Aes128::encrypt_block_ref(std::uint8_t* s) const {
  auto add_round_key = [&](unsigned round) {
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[round * 16 + i];
  };
  auto sub_bytes = [&] {
    for (int i = 0; i < 16; ++i) s[i] = kSbox[s[i]];
  };
  auto shift_rows = [&] {
    // State is column-major: s[c*4 + r].
    std::uint8_t t;
    // Row 1: shift left by 1.
    t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
    // Row 2: shift left by 2.
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // Row 3: shift left by 3 (= right by 1).
    t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
  };
  auto mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = s + c * 4;
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<std::uint8_t>(xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3);
      col[1] = static_cast<std::uint8_t>(a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3);
      col[2] = static_cast<std::uint8_t>(a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3));
      col[3] = static_cast<std::uint8_t>((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3));
    }
  };

  add_round_key(0);
  for (unsigned round = 1; round < kRounds; ++round) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(kRounds);
}

void Aes128::decrypt_block_ref(std::uint8_t* s) const {
  auto add_round_key = [&](unsigned round) {
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[round * 16 + i];
  };
  auto inv_sub_bytes = [&] {
    for (int i = 0; i < 16; ++i) s[i] = kInvSbox[s[i]];
  };
  auto inv_shift_rows = [&] {
    std::uint8_t t;
    // Row 1: shift right by 1.
    t = s[13]; s[13] = s[9]; s[9] = s[5]; s[5] = s[1]; s[1] = t;
    // Row 2: shift right by 2.
    std::swap(s[2], s[10]);
    std::swap(s[6], s[14]);
    // Row 3: shift right by 3 (= left by 1).
    t = s[3]; s[3] = s[7]; s[7] = s[11]; s[11] = s[15]; s[15] = t;
  };
  auto inv_mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = s + c * 4;
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<std::uint8_t>(gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^
                                         gmul(a3, 0x09));
      col[1] = static_cast<std::uint8_t>(gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^
                                         gmul(a3, 0x0d));
      col[2] = static_cast<std::uint8_t>(gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^
                                         gmul(a3, 0x0b));
      col[3] = static_cast<std::uint8_t>(gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^
                                         gmul(a3, 0x0e));
    }
  };

  add_round_key(kRounds);
  for (unsigned round = kRounds - 1; round >= 1; --round) {
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(round);
    inv_mix_columns();
  }
  inv_shift_rows();
  inv_sub_bytes();
  add_round_key(0);
}

}  // namespace steins::crypto

// Steins (paper §III): fast recovery for SIT-protected NVM with
// write-back-level runtime performance.
//
// Mechanisms:
//  * Counter generation (§III-B): when a dirty node is flushed, its parent
//    counter is GENERATED from the node (Eq. 1 sum, or Eq. 2 weighted sum
//    with skip-increment majors for split leaves) instead of
//    self-incremented, so stale parents can be recomputed from persistent
//    children after a crash.
//  * Offset-based tracking (§III-C): one 4-byte metadata-region offset per
//    metadata-cache line, grouped into 64 B record lines; a few record
//    lines are cached in the controller's ADR domain. Records are written
//    only on clean->dirty transitions.
//  * LInc trust bases (§III-D): per-level 8-byte registers holding the
//    total increase of cached counters over their stale NVM versions; all
//    LIncs fit one 64 B non-volatile register.
//  * Non-volatile parent buffer (§III-E): when a flushed node's parent is
//    not cached, the generated counter is parked in a small NV buffer and
//    applied lazily (before the next read or when full), removing iterative
//    parent fetches from the write critical path.
//  * Leaf recovery (§III-G): leaf counters are recovered from the covered
//    data blocks' HMACs by bounded trial (Osiris-style stop-loss bound for
//    GC; minor range + write-through-on-overflow majors for SC).
//  * Recovery (§III-G): root-to-leaf; children rebuilt counters are checked
//    by each child's HMAC (tampering), per-level counter-increase sums are
//    checked against the LIncs (replay).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cache/cache.hpp"
#include "common/flat_map.hpp"
#include "secure/secure_memory.hpp"

namespace steins {

class SteinsMemory final : public SecureMemoryBase {
 public:
  explicit SteinsMemory(const SystemConfig& cfg);

  void crash() override;
  RecoveryResult recover() override;

  /// Stop-loss period for GC leaf counters: the leaf is written through
  /// every kStopLoss increments of one counter, bounding the recovery
  /// trial search (paper §V: Osiris-style leaf recovery).
  static constexpr std::uint64_t kStopLoss = 64;

  /// Recovery resume cursor (re-entrant recovery): the full candidate set
  /// is persisted to plain NVM before any recovery mutation, so an attempt
  /// that crashes mid-walk re-enters with every original candidate even
  /// after step-5 installs have clobbered record slots and the NV parent
  /// buffer has been retired. One 64 B header + packed 4-byte offsets.
  static constexpr std::uint64_t kCursorMagic = 0x53544e4355525331ULL;  // "STNCURS1"
  static constexpr std::uint32_t kCursorFlagDegraded = 1u << 0;
  static constexpr std::uint32_t kCursorFlagOverflow = 1u << 1;

  /// Per-level trust bases (testing/introspection).
  const std::vector<std::uint64_t>& lincs() const { return lincs_; }
  std::size_t nv_buffer_entries() const { return nv_buffer_.size(); }

  /// Base of the persisted recovery resume-cursor window (testing).
  Addr recovery_cursor_base() const { return cursor_base_; }

  /// Drain the NV parent buffer now (normally triggered before reads).
  void drain_nv_buffer(Cycle& now);

  std::optional<std::uint64_t> pending_parent_counter(NodeId id) const override;

 protected:
  Cycle persist_node(SitNode& node, Cycle now) override;
  void on_node_dirtied(NodeId id, Cycle& now) override;
  void before_read(Cycle& now) override;
  CounterBump bump_leaf_counter(MetadataLine& leaf, std::size_t slot, Cycle& now) override;

 private:
  struct RecordLine {
    std::array<std::uint32_t, 16> offsets{};  // 0 = empty, else offset + 1
    std::uint16_t modified = 0;               // slots written since caching
  };

  struct BufferEntry {
    NodeId parent;
    std::size_t slot;
    std::uint64_t counter;  // generated parent counter
  };

  static constexpr std::size_t kOffsetsPerRecordLine = 16;

  Addr record_line_addr(std::size_t line) const { return record_base_ + line * kBlockSize; }

  /// Record the offset of a newly-dirtied node, keyed by its cache line.
  /// Slots are overwritten unconditionally, so a record-cache miss needs no
  /// NVM read; evictions merge the modified slots into the region with
  /// 4-byte partial writes (PCM is byte-addressable).
  void write_record(NodeId id, Cycle& now);

  /// Merge a record line's modified slots into NVM (partial writes).
  void flush_record_line(Addr laddr, const RecordLine& line, Cycle& now);

  /// Device occupancy charged per partial record write burst.
  static constexpr Cycle kPartialWriteCycles = 16;

  /// Apply (and remove) buffered parent counters targeting `node`; also
  /// mirrors the update into the cached copy if one exists.
  void apply_buffered_entries_to(SitNode& node);

  /// Apply one buffer entry whose parent is cached (or fetch it).
  void apply_buffer_entry(const BufferEntry& e, Cycle& now);

  // ---- recovery helpers ----

  struct RecoveryCtx {
    FlatMap<SitNode> recovered;  // key = flat offset
    FlatMap<SitNode> clean_verified;
    /// Roots of subtrees quarantined during this walk: (level, index).
    std::vector<std::pair<unsigned, std::uint64_t>> quarantined;
    /// Any loss happened: remaining LInc sums are unverifiable and skipped.
    bool linc_skip = false;
    /// Record lines were unreadable: candidates came from a resident scan.
    bool record_fallback = false;
    RecoveryReport* result = nullptr;
  };

  static std::uint64_t flat_key(const SitGeometry& geo, NodeId id) {
    return geo.offset_of(id);
  }

  /// True when `id` lies inside a subtree already quarantined this walk.
  static bool in_quarantined(const RecoveryCtx& ctx, NodeId id);

  /// Quarantine `id`'s subtree: records it in the walk context (so siblings
  /// keep going but descendants are skipped), blocks its covered data range,
  /// and voids the remaining LInc checks.
  void quarantine_subtree_ctx(NodeId id, RecoveryCtx& ctx, QuarantineReason reason);

  /// Counters of `id` during recovery: recovered map, else NVM (verified
  /// against its parent, recursing upward). Returns false when the chain is
  /// unusable — attack recorded and/or subtree quarantined in ctx — and the
  /// caller moves on to the next candidate.
  bool recovery_counters(NodeId id, RecoveryCtx& ctx, SitNode* out);

  /// Rebuild a node's counters from its persistent children; verifies each
  /// child's HMAC with the regenerated counter (tamper check). Unusable
  /// children are quarantined and keep their stale slot value.
  void rebuild_from_children(NodeId id, const SitNode& stale, RecoveryCtx& ctx, SitNode* out);

  /// Recover one leaf's counters by bounded trial against data HMACs.
  /// Unreadable or unmatched blocks are quarantined; their counters stay
  /// stale and the covering LInc checks are voided.
  void rebuild_leaf_from_data(NodeId id, const SitNode& stale, RecoveryCtx& ctx, SitNode* out);

  /// The salvage walk proper; recover() wraps it so every exit path still
  /// yields a RecoveryReport.
  void recover_impl(RecoveryCtx& ctx, RecoveryReport& result);

  // ---- re-entrant recovery: resume cursor ----

  /// Persist the candidate set (crosses one "cursor" persist boundary
  /// before any poke, so an armed crash leaves no durable trace).
  void persist_recovery_cursor(const std::vector<std::vector<NodeId>>& by_level,
                               bool degraded);
  /// Read a prior attempt's cursor. Returns false when none is present;
  /// sets *degraded when the prior attempt ran (or this one must run) the
  /// resident-scan fallback. Reads only.
  bool load_recovery_cursor(std::vector<std::uint32_t>* offsets, bool* degraded);
  /// Retire the cursor at the end of a completed attempt (one boundary).
  void clear_recovery_cursor();

  Addr cursor_line_addr(std::size_t line) const {
    return cursor_base_ + line * kBlockSize;
  }

  Addr record_base_;
  Addr cursor_base_;
  std::size_t cursor_capacity_;              // max offsets the region holds
  std::size_t record_lines_;                 // record region size in lines
  SetAssocCache<RecordLine> record_cache_;   // ADR-resident record lines
  std::vector<std::uint64_t> lincs_;         // NV register: one per level
  std::vector<BufferEntry> nv_buffer_;       // NV parent-counter buffer
  std::size_t nv_buffer_capacity_;
  bool draining_ = false;                    // re-entrancy guard for drains
};

}  // namespace steins

#include "schemes/writeback.hpp"

// WriteBackMemory is fully defined in the header; this TU anchors it in the
// library so its vtable has a home.
namespace steins {
namespace {
[[maybe_unused]] void anchor() { (void)sizeof(WriteBackMemory); }
}  // namespace
}  // namespace steins

#include "schemes/bmt.hpp"

#include <cassert>
#include <cstring>

#include "fault/fault.hpp"
#include "sit/counter_block.hpp"
#include "sit/node.hpp"

namespace steins {

BmtMemory::BmtMemory(const SystemConfig& cfg, std::uint64_t key_seed)
    : cfg_(cfg),
      geo_(cfg.nvm, CounterMode::kGeneral),
      dev_(cfg.nvm),
      channel_(cfg_, dev_),
      cme_(cfg.crypto, key_seed),
      mcache_(cfg.secure.metadata_cache.size_bytes, cfg.secure.metadata_cache.ways,
              cfg.secure.metadata_cache.block_bytes),
      root_(geo_.root_children(), 0) {
  // The all-zero initial tree: a zero root slot stands for "never written".
}

std::uint64_t BmtMemory::hash_of(const Block& image, Addr addr) const {
  std::uint8_t buf[kBlockSize + 8];
  std::memcpy(buf, image.data(), kBlockSize);
  std::memcpy(buf + kBlockSize, &addr, 8);
  return cme_.mac().mac64({buf, sizeof(buf)});
}

std::uint64_t BmtMemory::expected_hash(NodeId id, Cycle& now) {
  if (geo_.is_top_level(id)) return root_[id.index];
  const NodeId parent = geo_.parent_of(id);
  const Block pimg = fetch_meta(parent, now);
  std::uint64_t h;
  std::memcpy(&h, pimg.data() + geo_.slot_in_parent(id) * 8, 8);
  return h;
}

Block BmtMemory::fetch_meta(NodeId id, Cycle& now, bool* from_cache) {
  const Addr addr = geo_.node_addr(id);
  ++stats_.mcache_accesses;
  if (auto* line = mcache_.lookup(addr); line != nullptr && line->payload.valid) {
    if (from_cache != nullptr) *from_cache = true;
    now += 1;
    return line->payload.data;
  }
  if (from_cache != nullptr) *from_cache = false;

  // Resolve the expected hash first (recursion toward the root).
  const std::uint64_t expect = expected_hash(id, now);
  const bool exists = dev_.contains(addr) || channel_.queued(addr);
  Block img{};
  now = channel_.read(addr, now, &img);
  ++stats_.meta_reads;
  if (exists) {
    const std::uint64_t h = hash_of(img, addr);
    charge_hash(now);
    if (h != expect) {
      throw IntegrityViolation("BMT hash mismatch at level " + std::to_string(id.level) +
                               " index " + std::to_string(id.index));
    }
  } else if (expect != 0) {
    throw IntegrityViolation("missing BMT block with nonzero parent hash");
  }

  // Insert; flush a dirty victim (its branch hashes are already current, so
  // a plain write suffices).
  if (auto* line = mcache_.peek_mut(addr)) {
    line->payload = CachedBlock{img, true};
    return img;
  }
  auto victim = mcache_.insert(addr, false, CachedBlock{img, true});
  if (victim && victim->dirty && victim->payload.valid) {
    now = channel_.write(victim->addr, victim->payload.data, now);
    ++stats_.meta_writes;
  }
  return img;
}

void BmtMemory::update_branch(NodeId id, const Block& leaf_image, Cycle& now) {
  // Sequential hash chain (paper §II-C): each level's hash is an input to
  // the next, so the latencies serialize — the BMT's key disadvantage.
  Block child_image = leaf_image;
  NodeId cur = id;
  while (!geo_.is_top_level(cur)) {
    const std::uint64_t h = hash_of(child_image, geo_.node_addr(cur));
    charge_hash(now);
    const NodeId parent = geo_.parent_of(cur);
    Block pimg = fetch_meta(parent, now);
    std::memcpy(pimg.data() + geo_.slot_in_parent(cur) * 8, &h, 8);
    auto* pline = mcache_.lookup(geo_.node_addr(parent), true);
    assert(pline != nullptr);
    pline->payload.data = pimg;
    child_image = pimg;
    cur = parent;
  }
  const std::uint64_t top = hash_of(child_image, geo_.node_addr(cur));
  charge_hash(now);
  root_[cur.index] = top;
}

Cycle BmtMemory::write_block(Addr addr, const Block& data, Cycle now) {
  Cycle t = std::max(now, mc_free_at_);
  const std::uint64_t block = addr / kBlockSize;
  const NodeId leaf = geo_.leaf_of_data(block);
  const std::size_t slot = geo_.slot_of_data(block);

  Block img = fetch_meta(leaf, t);
  GeneralCounterBlock cb = GeneralCounterBlock::decode({img.data(), 56});
  cb.increment(slot);
  const NodePayload payload = cb.encode();
  std::memcpy(img.data(), payload.data(), payload.size());

  auto* line = mcache_.lookup(geo_.node_addr(leaf), true);
  assert(line != nullptr);
  line->payload.data = img;

  // Stop-loss: persist the counter block periodically to bound recovery.
  if (cb.counters[slot] % kStopLoss == 0) {
    t = channel_.write(geo_.node_addr(leaf), img, t);
    ++stats_.meta_writes;
    line->dirty = false;
  }

  // Propagate the new leaf hash to the root, sequentially.
  update_branch(leaf, img, t);

  ++stats_.aes_ops;
  const Block ct = cme_.encrypt(data, addr, cb.counters[slot]);
  const std::uint64_t tag = cme_.data_mac(ct, addr, cb.counters[slot], 0);
  charge_hash(t);
  const Cycle accept = channel_.write(addr, ct, t);
  dev_.write_tag(addr, tag);
  ++stats_.data_writes;
  stats_.write_latency.add((accept - now) + cfg_.nvm_write_cycles());

  mc_free_at_ = accept;
  return accept;
}

Cycle BmtMemory::read_block(Addr addr, Cycle now, Block* out) {
  Cycle t = std::max(now, mc_free_at_);
  const std::uint64_t block = addr / kBlockSize;
  const NodeId leaf = geo_.leaf_of_data(block);
  const std::size_t slot = geo_.slot_of_data(block);

  const Block img = fetch_meta(leaf, t);
  const GeneralCounterBlock cb = GeneralCounterBlock::decode({img.data(), 56});
  const std::uint64_t ctr = cb.counters[slot];

  const bool exists = dev_.contains(addr) || channel_.queued(addr);
  Block ct{};
  const Cycle t_data = channel_.read(addr, t, &ct);
  ++stats_.data_reads;
  ++stats_.aes_ops;
  Cycle ready = std::max(t_data, t + cfg_.secure.aes_latency_cycles);

  if (exists) {
    const std::uint64_t tag = dev_.read_tag(addr);
    const std::uint64_t mac = cme_.data_mac(ct, addr, ctr, 0);
    charge_hash(ready);
    if (mac != tag) {
      throw IntegrityViolation("data HMAC mismatch at block " + std::to_string(block));
    }
    if (out != nullptr) *out = cme_.decrypt(ct, addr, ctr);
  } else {
    if (ctr != 0) throw IntegrityViolation("missing data block with nonzero counter");
    if (out != nullptr) *out = zero_block();
  }
  stats_.read_latency.add(ready - now);
  mc_free_at_ = ready;
  return ready;
}

void BmtMemory::crash() {
  channel_.drain_all(std::max(mc_free_at_, wr_free_at_));
  mcache_.clear();
  mc_free_at_ = 0;
  wr_free_at_ = 0;  // BMT keeps its own decoupled write engine
}

void BmtMemory::recovery_persist_boundary(const char* stage) {
  if (injector_ != nullptr) injector_->on_recovery_persist(stage);
}

double BmtMemory::recovery_attempt_seconds() const {
  return static_cast<double>(recovery_reads_) * cfg_.secure.recovery_read_ns * 1e-9 +
         static_cast<double>(recovery_writes_) * cfg_.nvm.t_wr_ns * 1e-9;
}

void BmtMemory::note_recovery_crash(std::uint64_t boundary, const char* stage) {
  RecoveryAttempt attempt;
  attempt.nvm_reads = recovery_reads_;
  attempt.nvm_writes = recovery_writes_;
  attempt.seconds = recovery_attempt_seconds();
  attempt.crashed = true;
  attempt.crash_boundary = boundary;
  attempt.crash_stage = stage;
  attempt_log_.push_back(std::move(attempt));
  recovery_resume_ = true;
}

RecoveryResult BmtMemory::recover() {
  // The rebuild is a pure function of the durable image (stop-loss-bounded
  // counters + data HMACs), so a crashed attempt leaves a prefix of pokes
  // that the re-entry regenerates bit-identically: no resume cursor needed.
  if (!recovery_resume_) attempt_log_.clear();
  recovery_resume_ = false;
  recovery_reads_ = 0;
  recovery_writes_ = 0;
  RecoveryResult result;
  recover_impl(result);  // a nested RecoveryCrash propagates to the retry loop
  RecoveryAttempt attempt;
  attempt.nvm_reads = recovery_reads_;
  attempt.nvm_writes = recovery_writes_;
  attempt.seconds = recovery_attempt_seconds();
  attempt_log_.push_back(std::move(attempt));
  result.attempts = std::move(attempt_log_);
  attempt_log_.clear();
  result.nvm_reads = 0;
  result.nvm_writes = 0;
  result.seconds = 0.0;
  for (const RecoveryAttempt& a : result.attempts) {
    result.nvm_reads += a.nvm_reads;
    result.nvm_writes += a.nvm_writes;
    result.seconds += a.seconds;
  }
  return result;
}

void BmtMemory::recover_impl(RecoveryResult& result) {
  // Whole-tree reconstruction (the SCUE/BMT recovery profile the paper
  // argues against): recover EVERY counter block Osiris-style from the data
  // HMACs, rebuild every hash level bottom-up, compare the roots.
  std::vector<Block> level_images(geo_.level_count(0));
  std::vector<bool> touched(geo_.level_count(0), false);
  for (std::uint64_t leaf = 0; leaf < geo_.level_count(0); ++leaf) {
    const Addr laddr = counter_addr(leaf);
    ++recovery_reads_;
    GeneralCounterBlock cb = GeneralCounterBlock::decode({dev_.peek_block(laddr).data(), 56});
    for (std::size_t j = 0; j < kGeneralArity; ++j) {
      const std::uint64_t block = leaf * kGeneralArity + j;
      if (block >= geo_.data_blocks()) break;
      const Addr daddr = block * kBlockSize;
      ++recovery_reads_;
      if (!dev_.contains(daddr)) {
        if (cb.counters[j] != 0) {
          result.attack_detected = true;
          result.attack_detail = "data block erased during BMT recovery";
          return;
        }
        continue;
      }
      const Block ct = dev_.peek_block(daddr);
      const std::uint64_t tag = dev_.read_tag(daddr);
      bool found = false;
      for (std::uint64_t c = cb.counters[j]; c <= cb.counters[j] + kStopLoss; ++c) {
        if (cme_.data_mac(ct, daddr, c, 0) == tag) {
          cb.counters[j] = c;
          found = true;
          break;
        }
      }
      if (!found) {
        result.attack_detected = true;
        result.attacked_level = 0;
        result.attack_detail = "BMT counter not recoverable within the stop-loss window";
        return;
      }
    }
    const NodePayload payload = cb.encode();
    Block img{};
    std::memcpy(img.data(), payload.data(), payload.size());
    level_images[leaf] = img;
    // A leaf with all-zero counters was never written: its hash slot stays
    // the 0 "untouched" sentinel, mirroring the runtime updates.
    touched[leaf] = cb.parent_value() != 0 || img != zero_block();
    if (touched[leaf]) {
      recovery_persist_boundary("rebuild");
      dev_.poke_block(laddr, img);
      ++recovery_writes_;
      ++result.nodes_recovered;
    }
  }

  // Rebuild internal hash levels bottom-up.
  unsigned level = 0;
  while (level < geo_.top_level()) {
    const unsigned next = level + 1;
    std::vector<Block> parents(geo_.level_count(next));
    std::vector<bool> parent_touched(geo_.level_count(next), false);
    for (std::uint64_t p = 0; p < parents.size(); ++p) {
      Block img{};
      const NodeId pid{next, p};
      for (std::size_t j = 0; j < geo_.num_children(pid); ++j) {
        const std::uint64_t child = p * kTreeArity + j;
        if (!touched[child]) continue;  // untouched children keep slot 0
        const std::uint64_t h = hash_of(level_images[child], geo_.node_addr({level, child}));
        std::memcpy(img.data() + j * 8, &h, 8);
        parent_touched[p] = true;
      }
      parents[p] = img;
      if (parent_touched[p]) {
        recovery_persist_boundary("rebuild");
        dev_.poke_block(geo_.node_addr(pid), img);
        ++recovery_writes_;
        ++result.nodes_recovered;
      }
    }
    level_images = std::move(parents);
    touched = std::move(parent_touched);
    level = next;
  }
  for (std::uint64_t i = 0; i < level_images.size(); ++i) {
    // A zero register marks an untouched subtree (no write ever reached it).
    const std::uint64_t expect =
        touched[i] ? hash_of(level_images[i], geo_.node_addr({level, i})) : 0;
    if (expect != root_[i]) {
      result.attack_detected = true;
      result.attacked_level = static_cast<int>(level);
      result.attack_detail = "reconstructed BMT root mismatch";
      return;
    }
  }
}

}  // namespace steins

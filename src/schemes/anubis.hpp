// ASIT — Anubis for SGX Integrity Trees (Zubair & Awad, ISCA'19), as
// evaluated by the paper (§II-D, §IV).
//
// Every modification of a cached metadata node is persisted to a Shadow
// Table (ST) in NVM — one 64 B entry per metadata-cache line — doubling the
// write traffic. A cache-tree (Merkle tree over the ST entries) is
// maintained on-chip: each modification updates the leaf MAC and the tree
// path (sequential HMACs), and the tree root lives in a non-volatile
// register. Recovery replays the ST into the metadata cache, verifies the
// rebuilt cache-tree root against the register, and flushes the tree clean.
#pragma once

#include <vector>

#include "secure/secure_memory.hpp"

namespace steins {

class AnubisMemory final : public SecureMemoryBase {
 public:
  explicit AnubisMemory(const SystemConfig& cfg);

  void crash() override;
  RecoveryResult recover() override;

  /// Depth (number of MAC recomputations per modification).
  unsigned cache_tree_depth() const { return static_cast<unsigned>(tree_.size()); }

 protected:
  Cycle persist_node(SitNode& node, Cycle now) override {
    return persist_with_self_increment(node, now);
  }
  void on_node_modified(NodeId id, Cycle& now) override;

 private:
  Addr shadow_addr(std::size_t line_idx) const {
    return shadow_base_ + line_idx * kBlockSize;
  }
  static std::uint64_t encode_id(NodeId id) {
    return (std::uint64_t{1} << 63) | (static_cast<std::uint64_t>(id.level) << 48) | id.index;
  }
  static bool decode_id(std::uint64_t tag, NodeId* id) {
    if ((tag >> 63) == 0) return false;
    id->level = static_cast<unsigned>((tag >> 48) & 0x7fff);
    id->index = tag & ((std::uint64_t{1} << 48) - 1);
    return true;
  }

  std::uint64_t leaf_mac(const Block& image, std::size_t line_idx) const;
  std::uint64_t internal_mac(const std::uint64_t* children, std::size_t n) const;

  /// Update the cache-tree path above leaf `line_idx` (charges hashes).
  void update_tree_path(std::size_t line_idx, Cycle& now);

  /// Recompute every internal cache-tree level from the current leaf MACs.
  void recompute_internals();

  /// Recovery body; recover() wraps it so every exit yields a report.
  void recover_impl(RecoveryReport& result);

  Addr shadow_base_;
  // tree_[0] = leaf MACs (one per cache line), tree_.back() = root (size 1).
  std::vector<std::vector<std::uint64_t>> tree_;
  std::uint64_t root_reg_ = 0;  // on-chip NV register holding the tree root
};

}  // namespace steins

// Bonsai Merkle Tree baseline (paper §II-C, Rogers et al. MICRO'07).
//
// The BMT protects the CME counter blocks with a hash tree: each internal
// node holds 8 x 8-byte hashes of its children, recursively up to an
// on-chip root. Unlike SIT, a parent hash is computed OVER the child's
// content, so updates along a branch are strictly sequential — the
// performance disadvantage the paper cites as motivation for SIT.
//
// Runtime: counter blocks and hash nodes share the metadata cache; a data
// write updates the counter block and recomputes the hash branch up to the
// root (sequential hash latency per level). The root register is therefore
// always current.
//
// Recovery: counters are recovered Osiris-style (stop-loss bounded trial
// against data HMACs), then the whole hash tree is rebuilt bottom-up and
// the recomputed root compared with the register — a full-memory scan,
// which is why BMT/SCUE-style reconstruction is hour-scale for TB NVM
// (paper §I, §II-D).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/cache.hpp"
#include "common/config.hpp"
#include "nvm/nvm_device.hpp"
#include "nvm/write_queue.hpp"
#include "secure/cme.hpp"
#include "secure/secure_memory.hpp"

namespace steins {

class BmtMemory final : public SecureMemory {
 public:
  explicit BmtMemory(const SystemConfig& cfg, std::uint64_t key_seed = 0xb05a1b05a1ULL);

  Cycle read_block(Addr addr, Cycle now, Block* out) override;
  Cycle write_block(Addr addr, const Block& data, Cycle now) override;
  void crash() override;
  RecoveryResult recover() override;

  /// BMT is a standalone SecureMemory (not a SecureMemoryBase), so it
  /// carries its own nested-crash wiring: the injector sees every rebuild
  /// poke as a persist boundary and the crash drain runs through it.
  void set_fault_injector(FaultInjector* injector) override {
    injector_ = injector;
    channel_.set_crash_fault_hook(injector);
  }
  void note_recovery_crash(std::uint64_t boundary, const char* stage) override;
  std::vector<RecoveryAttempt> drain_attempt_log() override {
    return std::move(attempt_log_);
  }

  ExecStats& stats() override { return stats_; }
  const SystemConfig& config() const override { return cfg_; }
  NvmDevice& device() override { return dev_; }
  const SitGeometry& geometry() const override { return geo_; }
  const CacheStats& metadata_cache_stats() const override { return mcache_.stats(); }

  /// Tree height including the on-chip root.
  unsigned height() const { return geo_.height(); }

  NvmChannel& channel() { return channel_; }

  /// Stop-loss period bounding Osiris-style counter recovery.
  static constexpr std::uint64_t kStopLoss = 64;

 private:
  struct CachedBlock {
    Block data{};   // counter block or hash node image
    bool valid = false;
  };

  /// Counter region uses the same layout as a GC SIT level 0; hash levels
  /// reuse SitGeometry's internal levels (one 64 B node per 8 children).
  Addr counter_addr(std::uint64_t leaf) const { return geo_.node_addr({0, leaf}); }
  Addr hash_addr(unsigned level, std::uint64_t index) const {
    return geo_.node_addr({level, index});
  }

  /// Fetch a metadata block (counter or hash node) through the cache.
  /// Verification: hash the block and compare with the parent's stored
  /// hash slot (recursing up to the root register).
  Block fetch_meta(NodeId id, Cycle& now, bool* from_cache = nullptr);

  /// Recompute the hash branch above a modified block, sequentially, in
  /// the cache, ending at the root register (classic BMT update).
  void update_branch(NodeId id, const Block& leaf_image, Cycle& now);

  std::uint64_t hash_of(const Block& image, Addr addr) const;

  /// Verified expected hash of `id` (parent slot or root register).
  std::uint64_t expected_hash(NodeId id, Cycle& now);

  void charge_hash(Cycle& now) {
    now += cfg_.secure.hash_latency_cycles;
    ++stats_.hash_ops;
  }

  /// Cross a recovery persist boundary (throw-before-poke).
  void recovery_persist_boundary(const char* stage);
  /// The rebuild proper; recover() wraps it to fold attempt telemetry.
  void recover_impl(RecoveryResult& result);
  double recovery_attempt_seconds() const;

  SystemConfig cfg_;
  SitGeometry geo_;  // GC-mode geometry: leaves = counter blocks
  NvmDevice dev_;
  NvmChannel channel_;
  CmeEngine cme_;
  SetAssocCache<CachedBlock> mcache_;
  std::vector<std::uint64_t> root_;  // on-chip root hashes (per top node)
  ExecStats stats_;
  Cycle mc_free_at_ = 0;  // read-engine serialization
  Cycle wr_free_at_ = 0;  // write-engine serialization

  // Nested-crash state (re-entrant recovery).
  FaultInjector* injector_ = nullptr;
  std::vector<RecoveryAttempt> attempt_log_;
  bool recovery_resume_ = false;
  std::uint64_t recovery_reads_ = 0;
  std::uint64_t recovery_writes_ = 0;
};

}  // namespace steins

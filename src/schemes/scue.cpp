#include "schemes/scue.hpp"

#include <vector>

namespace steins {

ScueMemory::ScueMemory(const SystemConfig& cfg) : SecureMemoryBase(cfg) {
  STEINS_CHECK(cfg.counter_mode == CounterMode::kGeneral,
               "SCUE does not employ split counter blocks (paper §I)");
}

Cycle ScueMemory::persist_node(SitNode& node, Cycle now) {
  // Generated parent counters (sums), applied inline: the parent fetch sits
  // on the write critical path (SCUE has no NV parent buffer).
  const std::uint64_t generated = node.parent_value();
  const Addr addr = geo_.node_addr(node.id);
  const NodePayload payload = node.payload();
  const std::uint64_t mac = cme_.mac().node_mac(payload, addr, generated);
  charge_hash(now);
  now = timed_write(addr, node.to_block(mac), now);
  ++stats_.meta_writes;

  if (geo_.is_top_level(node.id)) {
    root_[node.id.index] = generated;
    return now;
  }
  const FetchResult parent = fetch_node(geo_.parent_of(node.id), now);
  now = parent.ready;
  parent.line->payload.gc.counters[geo_.slot_in_parent(node.id)] = generated;
  const bool was_clean = !parent.line->dirty;
  parent.line->dirty = true;
  on_node_modified(parent.line->payload.id, now);
  if (was_clean) on_node_dirtied(parent.line->payload.id, now);
  return now;
}

SecureMemoryBase::CounterBump ScueMemory::bump_leaf_counter(MetadataLine& leaf,
                                                            std::size_t slot, Cycle& now) {
  CounterBump bump = SecureMemoryBase::bump_leaf_counter(leaf, slot, now);
  // Recovery_root tracks the total increase of all leaf counters.
  recovery_root_ += bump.pv_after - bump.pv_before;
  // Stop-loss write-through bounds the per-counter recovery search.
  if (leaf.payload.gc.counters[slot] % kStopLoss == 0) {
    now = write_through_node(leaf, now);
  }
  return bump;
}

RecoveryResult ScueMemory::recover() {
  RecoveryReport result;
  recovery_prologue();
  try {
    recover_impl(result);
  } catch (const IntegrityViolation& e) {
    if (!result.attack_detected) {
      result.attack_detected = true;
      result.attack_detail = e.what();
    }
  } catch (const StatusError& e) {
    result.status = e.status();
  } catch (const std::exception& e) {
    result.status = Status(ErrorCode::kInternal, e.what());
  }
  return finish_recovery(std::move(result));
}

void ScueMemory::recover_impl(RecoveryReport& result) {
  // Reconstruct the whole tree from all the leaf nodes (paper §II-D).
  // Losses to uncorrectable ECC faults quarantine the affected leaf or data
  // line and void the Recovery_root comparison (the sum is incomplete); the
  // rest of the tree is still rebuilt and served.
  bool degraded_scan = false;
  std::uint64_t leaf_sum = 0;
  std::vector<SitNode> level(geo_.level_count(0));
  for (std::uint64_t i = 0; i < geo_.level_count(0); ++i) {
    const NodeId id{0, i};
    const Addr addr = geo_.node_addr(id);
    ++recovery_reads_;
    bool leaf_dead = false;
    SitNode node = SitNode::from_block(id, false, dev_.peek_corrected(addr, &leaf_dead));
    if (dev_.contains(addr) && leaf_dead) {
      // The stale leaf is gone: its counters have no trustworthy base, so
      // the covered data is blocked. The rebuild installs a zeroed leaf.
      quarantine_node_subtree(id, QuarantineReason::kEccMeta);
      degraded_scan = true;
      level[i] = SitNode{};
      level[i].id = id;
      continue;
    }
    for (std::size_t j = 0; j < kGeneralArity; ++j) {
      const std::uint64_t block = i * kGeneralArity + j;
      if (block >= geo_.data_blocks()) break;
      const Addr daddr = block * kBlockSize;
      ++recovery_reads_;
      if (qmap_.read_blocked(daddr)) {
        // Previously quarantined line: its counter has no recoverable base.
        degraded_scan = true;
        continue;
      }
      if (!dev_.contains(daddr)) {
        if (node.gc.counters[j] != 0 && !qmap_.read_blocked(daddr)) {
          if (!result.attack_detected) {
            result.attack_detected = true;
            result.attacked_level = 0;
            result.attack_detail = "data block erased during SCUE recovery";
          }
          quarantine_data_line(daddr, QuarantineReason::kLost);
          degraded_scan = true;
        }
        continue;
      }
      bool dead = false;
      const Block ct = dev_.peek_corrected(daddr, &dead);
      if (dead) {
        quarantine_data_line(daddr, QuarantineReason::kEccData);
        degraded_scan = true;
        continue;  // stale counter stays; reads of the line are blocked
      }
      const std::uint64_t tag = dev_.read_tag(daddr);
      bool found = false;
      for (std::uint64_t c = node.gc.counters[j]; c <= node.gc.counters[j] + kStopLoss; ++c) {
        if (cme_.data_mac(ct, daddr, c, 0) == tag) {
          node.gc.counters[j] = c;
          found = true;
          break;
        }
      }
      if (!found) {
        if (!result.attack_detected) {
          result.attack_detected = true;
          result.attacked_level = 0;
          result.attack_detail = "SCUE leaf counter not recoverable (tamper/replay)";
        }
        quarantine_data_line(daddr, QuarantineReason::kLost);
        degraded_scan = true;
      }
    }
    leaf_sum += node.parent_value();
    level[i] = node;
  }
  if (degraded_scan) result.tracking_degraded = true;

  // The Recovery_root check: replayed data/leaves make the sum fall short.
  // An incomplete (degraded) sum proves nothing either way, so it is only
  // compared when the scan covered everything.
  if (!degraded_scan && leaf_sum != recovery_root_) {
    result.attack_detected = true;
    result.attack_detail = "Recovery_root mismatch: leaf counter sum regressed (replay)";
    return;
  }
  // A detected attack is terminal: report it without re-arming the tree.
  if (result.attack_detected) return;

  // Rebuild every level from the sums and persist the whole tree.
  for (unsigned k = 0;; ++k) {
    for (auto& node : level) {
      const std::uint64_t generated = node.parent_value();
      const std::uint64_t mac =
          cme_.mac().node_mac(node.payload(), geo_.node_addr(node.id), generated);
      // Persist boundary before the poke: a nested crash mid-rebuild leaves
      // a prefix of freshly rebuilt nodes, and the fixed-point rebuild
      // regenerates the identical image on re-entry.
      recovery_persist_boundary("rebuild");
      dev_.poke_block(geo_.node_addr(node.id), node.to_block(mac));
      ++recovery_writes_;
      ++result.nodes_recovered;
    }
    if (k == geo_.top_level()) {
      for (std::uint64_t i = 0; i < level.size(); ++i) {
        root_[level[i].id.index] = level[i].parent_value();
      }
      break;
    }
    std::vector<SitNode> parents(geo_.level_count(k + 1));
    for (std::uint64_t p = 0; p < parents.size(); ++p) {
      parents[p].id = NodeId{k + 1, p};
      for (std::size_t j = 0; j < geo_.num_children(parents[p].id); ++j) {
        parents[p].gc.counters[j] = level[p * kTreeArity + j].parent_value();
      }
    }
    level = std::move(parents);
  }
  // Re-sync Recovery_root to the rebuilt (possibly degraded) tree so the
  // next crash compares against what is actually installed.
  if (degraded_scan) recovery_root_ = leaf_sum;
}

}  // namespace steins

#include "schemes/anubis.hpp"

#include <cstring>
#include "common/flat_map.hpp"

namespace steins {

AnubisMemory::AnubisMemory(const SystemConfig& cfg) : SecureMemoryBase(cfg) {
  STEINS_CHECK(cfg.counter_mode == CounterMode::kGeneral,
               "ASIT is evaluated with general counter blocks only (paper §IV)");
  shadow_base_ = geo_.aux_base();
  std::size_t n = mcache_.num_lines();
  tree_.emplace_back(n, 0);
  while (n > 1) {
    n = (n + kTreeArity - 1) / kTreeArity;
    tree_.emplace_back(n, 0);
  }
  recompute_internals();
  root_reg_ = tree_.back()[0];
}

void AnubisMemory::recompute_internals() {
  for (std::size_t level = 0; level + 1 < tree_.size(); ++level) {
    for (std::size_t p = 0; p < tree_[level + 1].size(); ++p) {
      const std::size_t first = p * kTreeArity;
      const std::size_t n = std::min(kTreeArity, tree_[level].size() - first);
      tree_[level + 1][p] = internal_mac(&tree_[level][first], n);
    }
  }
}

std::uint64_t AnubisMemory::leaf_mac(const Block& image, std::size_t line_idx) const {
  std::uint8_t buf[kBlockSize + 8];
  std::memcpy(buf, image.data(), kBlockSize);
  const std::uint64_t idx = line_idx;
  std::memcpy(buf + kBlockSize, &idx, 8);
  return cme_.mac().mac64({buf, sizeof(buf)});
}

std::uint64_t AnubisMemory::internal_mac(const std::uint64_t* children, std::size_t n) const {
  return cme_.mac().mac64({reinterpret_cast<const std::uint8_t*>(children), n * 8});
}

void AnubisMemory::update_tree_path(std::size_t line_idx, Cycle&) {
  std::size_t idx = line_idx;
  for (std::size_t level = 0; level + 1 < tree_.size(); ++level) {
    const std::size_t parent = idx / kTreeArity;
    const std::size_t first = parent * kTreeArity;
    const std::size_t n = std::min(kTreeArity, tree_[level].size() - first);
    tree_[level + 1][parent] = internal_mac(&tree_[level][first], n);
    // Sequential HMACs up the cache-tree (paper §II-D): modification-path
    // cost, charged to the write-latency side channel.
    charge_tracking(cfg_.secure.hash_latency_cycles, /*is_hash=*/true);
    idx = parent;
  }
  root_reg_ = tree_.back()[0];
}

void AnubisMemory::on_node_modified(NodeId id, Cycle& now) {
  const Addr addr = geo_.node_addr(id);
  const std::int64_t line_idx = mcache_.line_index(addr);
  STEINS_CHECK(line_idx >= 0, "modified node must be cached");
  const MetadataLine* line = mcache_.peek(addr);
  const Block image = line->payload.to_block(0);

  // Persist the updated node to the shadow table: the 2x write overhead.
  // Anubis persists the ST entry atomically with the update, so the cell
  // programming time sits on the critical path of every modification.
  const Addr saddr = shadow_addr(static_cast<std::size_t>(line_idx));
  const std::uint64_t sid = encode_id(id);
  now = timed_write(saddr, image, now, nullptr, 0, &sid);
  if (!recovering_) charge_tracking(cfg_.nvm_write_cycles());
  ++stats_.aux_writes;

  tree_[0][static_cast<std::size_t>(line_idx)] =
      leaf_mac(image, static_cast<std::size_t>(line_idx));
  charge_tracking(cfg_.secure.hash_latency_cycles, /*is_hash=*/true);
  update_tree_path(static_cast<std::size_t>(line_idx), now);
}

void AnubisMemory::crash() {
  SecureMemoryBase::crash();
  // The cache-tree body is volatile; only the root register survives.
  for (auto& level : tree_) {
    for (auto& m : level) m = 0;
  }
}

RecoveryReport AnubisMemory::recover() {
  RecoveryReport result;
  recovery_prologue();
  try {
    recover_impl(result);
  } catch (const IntegrityViolation& e) {
    if (!result.attack_detected) {
      result.attack_detected = true;
      result.attack_detail = e.what();
    }
  } catch (const StatusError& e) {
    result.status = e.status();
  } catch (const std::exception& e) {
    result.status = Status(ErrorCode::kInternal, e.what());
  }
  return finish_recovery(std::move(result));
}

void AnubisMemory::recover_impl(RecoveryReport& result) {
  const std::size_t lines = mcache_.num_lines();
  bool ecc_evidence = false;

  // Pass 1: read every shadow entry, rebuild the cache-tree, compare roots.
  std::vector<Block> images(lines);
  std::vector<bool> present(lines, false);
  for (std::size_t i = 0; i < lines; ++i) {
    const Addr saddr = shadow_addr(i);
    ++recovery_reads_;
    if (!dev_.contains(saddr)) continue;
    bool dead = false;
    const Block img = dev_.peek_corrected(saddr, &dead);
    if (dead) {
      // The entry's latest node image is gone. Its identity survives in the
      // ECC-colocated tag: quarantine the data the lost node covered and
      // keep replaying every other entry.
      ecc_evidence = true;
      result.tracking_degraded = true;
      NodeId id;
      if (decode_id(dev_.read_tag(saddr), &id)) {
        quarantine_node_subtree(id, QuarantineReason::kEccMeta);
      }
      continue;
    }
    images[i] = img;
    present[i] = true;
    tree_[0][i] = leaf_mac(img, i);
  }
  recompute_internals();
  if (tree_.back()[0] != root_reg_) {
    if (!ecc_evidence) {
      result.attack_detected = true;
      result.attack_detail = "ASIT cache-tree root mismatch: shadow table corrupted";
      return;
    }
    // Lost entries make the aggregate root unprovable; the replay below is
    // individually cross-checked against NVM images and anything tampered
    // still fails its node/data MAC at first use. Proceed degraded.
  }

  // Pass 2: replay shadow entries into the metadata cache. A node can
  // appear in more than one (stale) entry; counters are monotone, so the
  // entry with the largest parent value is the latest.
  FlatMap<SitNode> latest;
  std::vector<std::uint64_t> latest_keys;  // replay in first-seen order
  for (std::size_t i = 0; i < lines; ++i) {
    if (!present[i]) continue;
    NodeId id;
    if (!decode_id(dev_.read_tag(shadow_addr(i)), &id)) continue;
    SitNode node = SitNode::from_block(id, false, images[i]);
    const std::uint64_t key = encode_id(id);
    if (SitNode* existing = latest.find(key)) {
      if (node.parent_value() > existing->parent_value()) *existing = node;
    } else {
      latest.get_or_create(key) = node;
      latest_keys.push_back(key);
    }
  }
  for (const std::uint64_t key : latest_keys) {
    SitNode& node = *latest.find(key);
    MetadataLine* line = nullptr;
    const Addr addr = geo_.node_addr(node.id);
    if (mcache_.peek(addr) != nullptr) continue;
    // A shadow entry can be stale: the node was evicted (persisted) later
    // and its fresher entry overwritten by the line's next occupant.
    // Counters are monotone, so skip entries at or below the NVM image —
    // the node is clean and current in NVM.
    if (dev_.contains(addr)) {
      ++recovery_reads_;
      bool dead = false;
      const Block nvm_img = dev_.peek_corrected(addr, &dead);
      if (!dead) {
        const SitNode nvm_node = SitNode::from_block(node.id, false, nvm_img);
        if (nvm_node.parent_value() >= node.parent_value()) continue;
      }
      // Dead NVM copy: the shadow entry is the only readable version —
      // install it; re-persisting lays down a fresh codeword.
    }
    auto victim = mcache_.insert(addr, true, node, &line);
    if (victim && victim->dirty) {
      persist_detached(victim->payload, 0);
    }
    // Refresh the shadow entry at the node's (possibly new) cache line so
    // the next crash still finds its latest state.
    Cycle t = 0;
    on_node_modified(node.id, t);
    ++result.nodes_recovered;
  }
}

}  // namespace steins

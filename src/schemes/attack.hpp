// Attack injection (threat model, paper §II-A / §III-H).
//
// Models an attacker with full read/record/modify access to the NVM and the
// memory bus, but no access to the on-chip domain (keys, registers, ADR).
// Used by the security tests and the crash_recovery_demo example:
//   * tampering: flip bits in a stored block,
//   * replay: record a block (+ its ECC-colocated tags) and restore the old
//     version later,
//   * record forgery: rewrite Steins' offset records / STAR's bitmap to
//     flip nodes between "clean" and "dirty".
#pragma once

#include <unordered_map>

#include "secure/secure_memory.hpp"

namespace steins {

class AttackInjector {
 public:
  explicit AttackInjector(SecureMemory& mem) : mem_(mem) {}

  /// Snapshot a block and its tag sidecars (bus snooping / NVM scanning).
  void record_block(Addr addr);
  void record_node(NodeId id) { record_block(mem_.geometry().node_addr(id)); }

  /// Restore the recorded old version (replay attack). Returns false if the
  /// block was never recorded.
  bool replay_block(Addr addr);
  bool replay_node(NodeId id) { return replay_block(mem_.geometry().node_addr(id)); }

  /// Flip one bit of a stored block (tampering attack).
  void tamper_block(Addr addr, std::size_t byte_index = 0, std::uint8_t xor_mask = 0x01);
  void tamper_node(NodeId id, std::size_t byte_index = 0) {
    tamper_block(mem_.geometry().node_addr(id), byte_index);
  }

  /// Overwrite an arbitrary NVM block (e.g. forging offset records or
  /// bitmap lines in a scheme's auxiliary region).
  void overwrite_block(Addr addr, const Block& data);

  /// Erase a block entirely (model of a destructive scan).
  bool recorded(Addr addr) const { return snapshots_.contains(align(addr)); }

 private:
  struct Snapshot {
    Block data;
    std::uint64_t tag;
    std::uint64_t tag2;
  };
  static Addr align(Addr a) { return a & ~static_cast<Addr>(kBlockSize - 1); }

  SecureMemory& mem_;
  std::unordered_map<Addr, Snapshot> snapshots_;
};

}  // namespace steins

#include "schemes/attack.hpp"

namespace steins {

void AttackInjector::record_block(Addr addr) {
  NvmDevice& dev = mem_.device();
  snapshots_[align(addr)] =
      Snapshot{dev.peek_block(addr), dev.read_tag(addr), dev.read_tag2(addr)};
}

bool AttackInjector::replay_block(Addr addr) {
  const auto it = snapshots_.find(align(addr));
  if (it == snapshots_.end()) return false;
  NvmDevice& dev = mem_.device();
  dev.poke_block(addr, it->second.data);
  dev.write_tag(addr, it->second.tag);
  dev.write_tag2(addr, it->second.tag2);
  return true;
}

void AttackInjector::tamper_block(Addr addr, std::size_t byte_index, std::uint8_t xor_mask) {
  NvmDevice& dev = mem_.device();
  Block b = dev.peek_block(addr);
  b[byte_index % kBlockSize] ^= xor_mask;
  dev.poke_block(addr, b);
}

void AttackInjector::overwrite_block(Addr addr, const Block& data) {
  mem_.device().poke_block(addr, data);
}

}  // namespace steins

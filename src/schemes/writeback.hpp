// WB baseline (paper §IV): classic counter-mode encryption + SIT with lazy
// write-back of metadata. Highest runtime performance, no crash recovery —
// dirty metadata lost at power failure stays lost.
#pragma once

#include "secure/secure_memory.hpp"

namespace steins {

class WriteBackMemory final : public SecureMemoryBase {
 public:
  explicit WriteBackMemory(const SystemConfig& cfg) : SecureMemoryBase(cfg) {}

  RecoveryResult recover() override {
    RecoveryResult r;
    r.supported = false;
    return r;
  }

 protected:
  Cycle persist_node(SitNode& node, Cycle now) override {
    return persist_with_self_increment(node, now);
  }
};

}  // namespace steins

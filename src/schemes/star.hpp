// STAR — the SIT trace-and-recovery scheme (Huang & Hua, HPCA'21), as
// evaluated by the paper (§II-D, §IV).
//
// Mechanisms modeled:
//  * Each flushed child stashes the LSBs of its (self-incremented) parent
//    counter in its spare ECC bits; recovery reconstructs a dirty node's
//    counters by splicing those LSBs onto the stale counters (with carry).
//  * A multi-layer bitmap over the metadata region tracks dirty nodes; it
//    is updated on BOTH clean->dirty and dirty->clean transitions through a
//    small ADR-resident line cache (worse locality and twice the update
//    rate of Steins' offset records).
//  * A cache-tree over the dirty nodes of each metadata-cache set: on every
//    modification the set's dirty nodes are sorted by address and MAC'd
//    (the set-MAC), and the tree above the set-MACs is updated; the root
//    lives in a non-volatile register.
#pragma once

#include <vector>

#include "cache/cache.hpp"
#include "secure/secure_memory.hpp"

namespace steins {

class StarMemory final : public SecureMemoryBase {
 public:
  explicit StarMemory(const SystemConfig& cfg);

  void crash() override;
  RecoveryResult recover() override;

  /// How many parent-counter LSBs each child carries.
  static constexpr unsigned kLsbBits = 16;

 protected:
  Cycle persist_node(SitNode& node, Cycle now) override;
  void on_node_modified(NodeId id, Cycle& now) override;
  void on_node_dirtied(NodeId id, Cycle& now) override;
  void on_node_cleaned(NodeId id, Cycle& now) override;
  void on_data_written(Addr addr, std::uint64_t counter, Cycle& now) override;

 private:
  struct BitmapLine {
    std::array<std::uint64_t, 8> bits{};
  };

  static constexpr std::size_t kNodesPerBitmapLine = kBlockSize * 8;  // 512

  Addr bitmap_line_addr(std::uint64_t line) const {
    return bitmap_base_ + line * kBlockSize;
  }

  /// Set/clear the dirty bit of a node, going through the ADR-resident
  /// bitmap line cache (may read/write NVM on a miss).
  void update_bitmap(NodeId id, bool dirty, Cycle& now);

  /// Recompute the set-MAC of metadata-cache set `set` and the cache-tree
  /// path above it.
  void update_set_mac(std::size_t set, Cycle& now);
  std::uint64_t compute_set_mac(std::size_t set) const;

  /// Recompute every set-MAC and internal level from the current cache.
  void rebuild_tree();

  /// Splice stored LSBs onto a stale counter, adding carry if needed.
  static std::uint64_t reconstruct_counter(std::uint64_t stale, std::uint64_t lsbs);

  /// Recovery body; recover() wraps it so every exit yields a report.
  void recover_impl(RecoveryReport& result);

  Addr bitmap_base_;
  std::uint64_t bitmap_lines_;
  SetAssocCache<BitmapLine> bitmap_cache_;
  /// Upper bitmap layer (functional): one bit per bitmap line, set when the
  /// line has ever gone nonzero. A flat bitset so the hot set-bit path is a
  /// word OR; recovery scans it in ascending line order.
  std::vector<std::uint64_t> nonzero_lines_;

  // Cache-tree: set_macs_ then internal levels up to the root register.
  std::vector<std::vector<std::uint64_t>> tree_;
  std::uint64_t root_reg_ = 0;
};

}  // namespace steins

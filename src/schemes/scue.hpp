// SCUE-style scheme (paper §II-D; Huang & Hua, HPCA'23 "Root crash
// consistency of SGX-style integrity trees").
//
// Runtime: like Steins, parent counters are derivable from children (Eq. 1
// sums), but the only recovery trust base is the Recovery_root — the sum of
// all leaf counters — kept in an on-chip NV register and bumped on every
// data write. No dirty tracking exists, so runtime overhead is minimal
// ("SCUE achieves high performance").
//
// Recovery: with no record of WHICH nodes were dirty, SCUE must rebuild the
// ENTIRE tree from all the leaf nodes (recovering each leaf counter
// Osiris-style from the data HMACs), summing the leaf counters and
// comparing against Recovery_root. That full-memory scan is why the paper
// excludes SCUE from its comparison: "the recovery time is hour-scale for
// TB memory, which is unacceptable" — the abl_recovery_scaling bench
// reproduces that argument quantitatively.
#pragma once

#include "secure/secure_memory.hpp"

namespace steins {

class ScueMemory final : public SecureMemoryBase {
 public:
  explicit ScueMemory(const SystemConfig& cfg);

  RecoveryResult recover() override;

  std::uint64_t recovery_root() const { return recovery_root_; }

  /// Stop-loss period bounding the per-leaf counter recovery search.
  static constexpr std::uint64_t kStopLoss = 64;

 protected:
  Cycle persist_node(SitNode& node, Cycle now) override;
  CounterBump bump_leaf_counter(MetadataLine& leaf, std::size_t slot, Cycle& now) override;

 private:
  /// Recovery body; recover() wraps it so every exit yields a report.
  void recover_impl(RecoveryReport& result);

  std::uint64_t recovery_root_ = 0;  // on-chip NV register: sum of leaf counters
};

}  // namespace steins

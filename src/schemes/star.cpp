#include "schemes/star.hpp"

#include <array>
#include <algorithm>
#include <cstring>

namespace steins {

namespace {

Block encode_bitmap(const std::array<std::uint64_t, 8>& bits) {
  Block b{};
  std::memcpy(b.data(), bits.data(), kBlockSize);
  return b;
}

std::array<std::uint64_t, 8> decode_bitmap(const Block& b) {
  std::array<std::uint64_t, 8> bits{};
  std::memcpy(bits.data(), b.data(), kBlockSize);
  return bits;
}

}  // namespace

StarMemory::StarMemory(const SystemConfig& cfg)
    : SecureMemoryBase(cfg),
      bitmap_cache_(cfg.secure.record_lines_cached * kBlockSize,
                    static_cast<unsigned>(cfg.secure.record_lines_cached)) {
  STEINS_CHECK(cfg.counter_mode == CounterMode::kGeneral,
               "STAR is evaluated with general counter blocks only (paper §IV)");
  bitmap_base_ = geo_.aux_base();
  bitmap_lines_ = (geo_.total_nodes() + kNodesPerBitmapLine - 1) / kNodesPerBitmapLine;
  nonzero_lines_.assign((bitmap_lines_ + 63) / 64, 0);

  // Cache-tree over set-MACs.
  std::size_t n = mcache_.num_sets();
  tree_.emplace_back(n, 0);
  while (n > 1) {
    n = (n + kTreeArity - 1) / kTreeArity;
    tree_.emplace_back(n, 0);
  }
  rebuild_tree();
  root_reg_ = tree_.back()[0];
}

void StarMemory::rebuild_tree() {
  for (std::size_t set = 0; set < tree_[0].size(); ++set) {
    tree_[0][set] = compute_set_mac(set);
  }
  for (std::size_t level = 0; level + 1 < tree_.size(); ++level) {
    for (std::size_t p = 0; p < tree_[level + 1].size(); ++p) {
      const std::size_t first = p * kTreeArity;
      const std::size_t n = std::min(kTreeArity, tree_[level].size() - first);
      tree_[level + 1][p] =
          cme_.mac().mac64({reinterpret_cast<const std::uint8_t*>(&tree_[level][first]), n * 8});
    }
  }
}

std::uint64_t StarMemory::reconstruct_counter(std::uint64_t stale, std::uint64_t lsbs) {
  constexpr std::uint64_t kMask = (std::uint64_t{1} << kLsbBits) - 1;
  std::uint64_t rec = (stale & ~kMask) | (lsbs & kMask);
  if (rec < stale) rec += (kMask + 1);
  return rec & kCounter56Mask;
}

void StarMemory::update_bitmap(NodeId id, bool dirty, Cycle& now) {
  const std::uint64_t flat = geo_.offset_of(id);
  const std::uint64_t line = flat / kNodesPerBitmapLine;
  const std::uint64_t bit = flat % kNodesPerBitmapLine;
  const Addr laddr = bitmap_line_addr(line);

  auto* cached = bitmap_cache_.lookup(laddr, true);
  if (cached == nullptr) {
    Block img{};
    now = timed_read(laddr, now, &img);
    ++stats_.aux_reads;
    auto victim = bitmap_cache_.insert(laddr, true, BitmapLine{decode_bitmap(img)}, &cached);
    if (victim && victim->dirty) {
      now = timed_write(victim->addr, encode_bitmap(victim->payload.bits), now);
      ++stats_.aux_writes;
    }
  }
  auto& word = cached->payload.bits[bit / 64];
  const std::uint64_t mask = std::uint64_t{1} << (bit % 64);
  if (dirty) {
    word |= mask;
    nonzero_lines_[line / 64] |= std::uint64_t{1} << (line % 64);
  } else {
    word &= ~mask;
  }
}

std::uint64_t StarMemory::compute_set_mac(std::size_t set) const {
  // MAC over the set's dirty nodes, sorted by address (paper §II-D: "STAR
  // needs to sort the dirty nodes in the same set by the addresses").
  // Runs on every node-modification, so everything stays on the stack: a
  // set has at most `ways` dirty nodes and insertion sort beats std::sort
  // at that size.
  struct Entry {
    Addr addr;
    NodePayload payload;
  };
  constexpr std::size_t kMaxWays = 32;
  STEINS_CHECK(mcache_.ways() <= kMaxWays, "metadata cache ways exceed set-MAC buffer");
  std::array<Entry, kMaxWays> entries;
  std::size_t n = 0;
  mcache_.for_each_in_set(set, [&](const MetadataLine& line) {
    if (line.dirty) entries[n++] = {line.tag, line.payload.payload()};
  });
  for (std::size_t i = 1; i < n; ++i) {
    Entry e = entries[i];
    std::size_t j = i;
    for (; j > 0 && entries[j - 1].addr > e.addr; --j) entries[j] = entries[j - 1];
    entries[j] = e;
  }
  // Entry is exactly addr || payload with no padding, so the sorted array
  // is already the MAC message — no staging copy.
  static_assert(sizeof(Entry) == 8 + sizeof(NodePayload));
  return cme_.mac().mac64(
      {reinterpret_cast<const std::uint8_t*>(entries.data()), n * sizeof(Entry)});
}

void StarMemory::update_set_mac(std::size_t set, Cycle&) {
  // Sorting the set's dirty nodes plus the sequential cache-tree HMACs:
  // modification-path costs, charged to the write-latency side channel.
  charge_tracking(mcache_.ways());
  tree_[0][set] = compute_set_mac(set);
  charge_tracking(cfg_.secure.hash_latency_cycles, /*is_hash=*/true);
  std::size_t idx = set;
  for (std::size_t level = 0; level + 1 < tree_.size(); ++level) {
    const std::size_t parent = idx / kTreeArity;
    const std::size_t first = parent * kTreeArity;
    const std::size_t n = std::min(kTreeArity, tree_[level].size() - first);
    tree_[level + 1][parent] =
        cme_.mac().mac64({reinterpret_cast<const std::uint8_t*>(&tree_[level][first]), n * 8});
    charge_tracking(cfg_.secure.hash_latency_cycles, /*is_hash=*/true);
    idx = parent;
  }
  root_reg_ = tree_.back()[0];
}

Cycle StarMemory::persist_node(SitNode& node, Cycle now) {
  std::uint64_t parent_ctr = 0;
  now = persist_with_self_increment(node, now, &parent_ctr);
  // Stash the parent counter's LSBs in the child's spare ECC bits; they
  // ride along with the node write (no extra traffic).
  dev_.write_tag2(geo_.node_addr(node.id), parent_ctr & ((std::uint64_t{1} << kLsbBits) - 1));
  // When the parent counter wraps its stored LSB window, write the parent
  // through so LSB splicing stays unambiguous (at most one carry).
  if (!geo_.is_top_level(node.id) && parent_ctr % (std::uint64_t{1} << kLsbBits) == 0) {
    const Addr paddr = geo_.node_addr(geo_.parent_of(node.id));
    if (MetadataLine* pl = mcache_.peek_mut(paddr); pl != nullptr && pl->dirty) {
      now = write_through_node(*pl, now);
    }
  }
  return now;
}

void StarMemory::on_node_modified(NodeId id, Cycle& now) {
  const std::size_t set = mcache_.set_index(geo_.node_addr(id));
  update_set_mac(set, now);
}

void StarMemory::on_node_dirtied(NodeId id, Cycle& now) {
  update_bitmap(id, true, now);
  update_set_mac(mcache_.set_index(geo_.node_addr(id)), now);
}

void StarMemory::on_node_cleaned(NodeId id, Cycle& now) {
  update_bitmap(id, false, now);
  update_set_mac(mcache_.set_index(geo_.node_addr(id)), now);
}

void StarMemory::on_data_written(Addr addr, std::uint64_t counter, Cycle&) {
  dev_.write_tag2(addr, counter & ((std::uint64_t{1} << kLsbBits) - 1));
}

void StarMemory::crash() {
  // Drain the write queue first: a queued (older) bitmap-line write must
  // not overwrite the newer ADR-resident copy flushed below.
  SecureMemoryBase::crash();
  // ADR flushes the cached bitmap lines.
  bitmap_cache_.for_each([&](SetAssocCache<BitmapLine>::Line& line) {
    if (line.dirty) dev_.poke_block(line.tag, encode_bitmap(line.payload.bits));
  });
  bitmap_cache_.clear();
  for (auto& level : tree_) {
    for (auto& m : level) m = 0;
  }
}

RecoveryResult StarMemory::recover() {
  RecoveryReport result;
  recovery_prologue();
  try {
    recover_impl(result);
  } catch (const IntegrityViolation& e) {
    if (!result.attack_detected) {
      result.attack_detected = true;
      result.attack_detail = e.what();
    }
  } catch (const StatusError& e) {
    result.status = e.status();
  } catch (const std::exception& e) {
    result.status = Status(ErrorCode::kInternal, e.what());
  }
  return finish_recovery(std::move(result));
}

void StarMemory::recover_impl(RecoveryReport& result) {
  bool ecc_evidence = false;

  // Scan the multi-layer bitmap: the upper layer tells us which bitmap
  // lines are nonzero; read only those. A line whose content is lost to an
  // uncorrectable ECC fault falls back to taking every node it covers as a
  // candidate — a superset of the dirty bits it recorded.
  recovery_reads_ += (bitmap_lines_ + kNodesPerBitmapLine - 1) / kNodesPerBitmapLine;
  std::vector<NodeId> dirty_nodes;
  std::vector<std::pair<NodeId, bool>> candidates;  // (node, from_fallback)
  const auto scan_line = [&](std::uint64_t line) {
    ++recovery_reads_;
    bool dead = false;
    const Block raw = dev_.peek_corrected(bitmap_line_addr(line), &dead);
    if (dead) {
      ecc_evidence = true;
      result.tracking_degraded = true;
      const std::uint64_t first = line * kNodesPerBitmapLine;
      const std::uint64_t last = std::min<std::uint64_t>(first + kNodesPerBitmapLine,
                                                         geo_.total_nodes());
      for (std::uint64_t flat = first; flat < last; ++flat) {
        candidates.emplace_back(geo_.node_at_offset(static_cast<std::uint32_t>(flat)), true);
      }
      return;
    }
    const auto bits = decode_bitmap(raw);
    for (std::size_t w = 0; w < bits.size(); ++w) {
      std::uint64_t word = bits[w];
      while (word != 0) {
        const unsigned b = static_cast<unsigned>(__builtin_ctzll(word));
        word &= word - 1;
        const std::uint64_t flat = line * kNodesPerBitmapLine + w * 64 + b;
        if (flat < geo_.total_nodes()) {
          candidates.emplace_back(geo_.node_at_offset(static_cast<std::uint32_t>(flat)), false);
        }
      }
    }
  };
  for (std::uint64_t nw = 0; nw < nonzero_lines_.size(); ++nw) {
    std::uint64_t nword = nonzero_lines_[nw];
    while (nword != 0) {
      scan_line(nw * 64 + static_cast<unsigned>(__builtin_ctzll(nword)));
      nword &= nword - 1;
    }
  }

  // Reconstruct each candidate node: splice the parent-counter LSBs stored
  // in each persistent child onto the stale counters. Fallback candidates
  // are only installed when splicing changed something — a clean node
  // splices to itself, and installing it dirty would corrupt the set-MACs.
  for (const auto& [id, from_fallback] : candidates) {
    const Addr addr = geo_.node_addr(id);
    ++recovery_reads_;
    if (from_fallback && !dev_.contains(addr)) continue;  // never persisted
    bool dead = false;
    SitNode node = SitNode::from_block(id, false, dev_.peek_corrected(addr, &dead));
    if (dead) {
      // The stale base for LSB splicing is gone: the node and everything
      // under it cannot be re-verified.
      ecc_evidence = true;
      quarantine_node_subtree(id, QuarantineReason::kEccMeta);
      continue;
    }
    const SitNode stale = node;

    for (std::size_t j = 0; j < kTreeArity; ++j) {
      Addr child_addr;
      if (id.level == 0) {
        const std::uint64_t block = id.index * geo_.leaf_coverage() + j;
        if (block >= geo_.data_blocks()) break;
        child_addr = block * kBlockSize;
      } else {
        if (j >= geo_.num_children(id)) break;
        child_addr = geo_.node_addr(geo_.child_of(id, j));
      }
      ++recovery_reads_;
      if (!dev_.contains(child_addr)) continue;  // never written: counter 0
      node.gc.counters[j] = reconstruct_counter(node.gc.counters[j], dev_.read_tag2(child_addr));
    }
    if (from_fallback && node.gc.counters == stale.gc.counters) continue;

    if (mcache_.peek(addr) == nullptr) {
      mcache_.insert(addr, true, node);
      ++result.nodes_recovered;
    }
  }

  // Verify: rebuild every set-MAC and the cache-tree root, compare with the
  // non-volatile root register. With ECC losses in the walk the recovered
  // dirty set provably differs from the pre-crash one (quarantined nodes
  // are missing), so a mismatch is degradation, not an attack verdict.
  rebuild_tree();
  if (tree_.back()[0] != root_reg_) {
    if (!ecc_evidence) {
      result.attack_detected = true;
      result.attack_detail = "STAR cache-tree root mismatch: recovered dirty set corrupted";
      return;
    }
    result.tracking_degraded = true;
  }
  root_reg_ = tree_.back()[0];
}

}  // namespace steins

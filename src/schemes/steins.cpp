#include "schemes/steins.hpp"

#include <algorithm>
#include <cstring>

namespace steins {

namespace {

std::array<std::uint32_t, 16> decode_record(const Block& b) {
  std::array<std::uint32_t, 16> offsets{};
  std::memcpy(offsets.data(), b.data(), kBlockSize);
  return offsets;
}

/// Record the first attack observed during the walk; later ones are
/// secondary (localization reports the initial failure site).
void note_attack(RecoveryReport* r, int level, std::string detail) {
  if (r->attack_detected) return;
  r->attack_detected = true;
  r->attacked_level = level;
  r->attack_detail = std::move(detail);
}

}  // namespace

SteinsMemory::SteinsMemory(const SystemConfig& cfg)
    : SecureMemoryBase(cfg),
      record_cache_(cfg.secure.record_lines_cached * kBlockSize,
                    static_cast<unsigned>(cfg.secure.record_lines_cached)),
      lincs_(geo_.num_levels(), 0),
      nv_buffer_capacity_(cfg.secure.nv_buffer_bytes / 16) {
  STEINS_CHECK(geo_.num_levels() <= 8,
               "all LIncs must fit one 64 B NV register (paper §III-D)");
  STEINS_CHECK(cfg.update_policy == UpdatePolicy::kLazy,
               "Steins' counter generation is defined for the lazy update scheme");
  record_base_ = geo_.aux_base();
  record_lines_ =
      (mcache_.num_lines() + kOffsetsPerRecordLine - 1) / kOffsetsPerRecordLine;
  STEINS_CHECK(nv_buffer_capacity_ > 0, "NV parent buffer must hold at least one entry");
  // Resume-cursor region: one 64 KiB window just below the quarantine map.
  cursor_base_ = qmap_base_ - (Addr{1} << 16);
  cursor_capacity_ = ((std::size_t{1} << 16) / kBlockSize - 1) * kOffsetsPerRecordLine;
  STEINS_CHECK(record_base_ + record_lines_ * kBlockSize <= cursor_base_,
               "offset-record region must end below the recovery resume cursor");
}

// ---------------------------------------------------------------------------
// Runtime: offset records
// ---------------------------------------------------------------------------

void SteinsMemory::flush_record_line(Addr laddr, const RecordLine& line, Cycle& now) {
  if (line.modified == 0) return;
  // Record flushes triggered inside recovery (step-5 install evictions)
  // are durable writes of the recovery attempt: a persist boundary.
  if (recovering_) recovery_persist_boundary("record");
  // Merge only the modified 4-byte slots into the region: partial writes on
  // byte-addressable PCM; the unmodified slots are never read.
  Block cur = dev_.peek_block(laddr);
  int slots = 0;
  for (std::size_t s = 0; s < kOffsetsPerRecordLine; ++s) {
    if ((line.modified >> s) & 1) {
      std::memcpy(cur.data() + s * 4, &line.offsets[s], 4);
      ++slots;
    }
  }
  dev_.poke_block(laddr, cur);
  stats_.aux_write_bytes += static_cast<std::uint64_t>(slots) * 4;
  now += kPartialWriteCycles;
}

void SteinsMemory::write_record(NodeId id, Cycle& now) {
  const Addr addr = geo_.node_addr(id);
  const std::int64_t line_idx = mcache_.line_index(addr);
  STEINS_CHECK(line_idx >= 0, "dirtied node must be cached");
  const std::size_t rec_line = static_cast<std::size_t>(line_idx) / kOffsetsPerRecordLine;
  const std::size_t slot = static_cast<std::size_t>(line_idx) % kOffsetsPerRecordLine;
  const Addr laddr = record_line_addr(rec_line);

  auto* cached = record_cache_.lookup(laddr, true);
  if (cached == nullptr) {
    // Slots are overwritten unconditionally: no read-for-ownership needed.
    auto victim = record_cache_.insert(laddr, true, RecordLine{}, &cached);
    if (victim && victim->dirty) {
      flush_record_line(victim->addr, victim->payload, now);
    }
  }
  cached->payload.offsets[slot] = geo_.offset_of(id) + 1;  // 0 = empty
  cached->payload.modified = static_cast<std::uint16_t>(cached->payload.modified | (1u << slot));
}

void SteinsMemory::on_node_dirtied(NodeId id, Cycle& now) { write_record(id, now); }

// ---------------------------------------------------------------------------
// Runtime: counter generation, LIncs, NV parent buffer
// ---------------------------------------------------------------------------

std::optional<std::uint64_t> SteinsMemory::pending_parent_counter(NodeId id) const {
  const NodeId parent = geo_.parent_of(id);
  const std::size_t slot = geo_.slot_in_parent(id);
  // Newest entry wins (counters are monotone, so it is also the largest).
  std::optional<std::uint64_t> found;
  for (const auto& e : nv_buffer_) {
    if (e.parent == parent && e.slot == slot) found = e.counter;
  }
  return found;
}

void SteinsMemory::apply_buffered_entries_to(SitNode& node) {
  if (node.id.level == 0) return;  // buffer entries always target internal nodes
  for (auto it = nv_buffer_.begin(); it != nv_buffer_.end();) {
    if (it->parent == node.id) {
      if (it->counter <= node.gc.counters[it->slot]) {  // already absorbed
        it = nv_buffer_.erase(it);
        continue;
      }
      const std::uint64_t delta = it->counter - node.gc.counters[it->slot];
      node.gc.counters[it->slot] = it->counter;
      // Mirror into the cached copy if the caller handed us a detached one.
      if (MetadataLine* pl = mcache_.peek_mut(geo_.node_addr(node.id));
          pl != nullptr && &pl->payload != &node) {
        pl->payload.gc.counters[it->slot] = it->counter;
      }
      lincs_[node.id.level - 1] -= delta;
      lincs_[node.id.level] += delta;
      it = nv_buffer_.erase(it);
    } else {
      ++it;
    }
  }
}

void SteinsMemory::apply_buffer_entry(const BufferEntry& e, Cycle& now) {
  const FetchResult parent = fetch_node(e.parent, now);
  now = parent.ready;
  SitNode& pnode = parent.line->payload;
  // Counters are monotone: an entry at or below the current slot value was
  // already absorbed by a later inline update and must not regress it.
  if (e.counter <= pnode.gc.counters[e.slot]) return;
  const std::uint64_t delta = e.counter - pnode.gc.counters[e.slot];
  pnode.gc.counters[e.slot] = e.counter;
  const bool was_clean = !parent.line->dirty;
  parent.line->dirty = true;
  if (was_clean) on_node_dirtied(e.parent, now);
  const unsigned child_level = e.parent.level - 1;
  lincs_[child_level] -= delta;
  lincs_[child_level + 1] += delta;
}

void SteinsMemory::drain_nv_buffer(Cycle& now) {
  // An entry must stay visible in the buffer while it is being applied:
  // the parent fetch below can recursively verify this entry's child, and
  // that verification reads the pending counter from the buffer. Entries
  // are therefore applied in place and only erased afterwards.
  if (draining_) return;  // a drain can trigger persists that re-enter here
  draining_ = true;
  while (!nv_buffer_.empty()) {
    const BufferEntry e = nv_buffer_.front();
    apply_buffer_entry(e, now);
    // The apply chain may already have absorbed and erased it.
    const auto it = std::find_if(nv_buffer_.begin(), nv_buffer_.end(), [&](const BufferEntry& x) {
      return x.parent == e.parent && x.slot == e.slot && x.counter == e.counter;
    });
    if (it != nv_buffer_.end()) nv_buffer_.erase(it);
  }
  draining_ = false;
}

void SteinsMemory::before_read(Cycle& now) { drain_nv_buffer(now); }

Cycle SteinsMemory::persist_node(SitNode& node, Cycle now) {
  // Fold in any parent counters parked for this node before persisting it.
  apply_buffered_entries_to(node);

  // Counter generation (paper §III-B / Fig. 7): the parent counter is
  // generated from the node itself, so the HMAC needs no parent fetch.
  const std::uint64_t generated = node.parent_value();
  const Addr addr = geo_.node_addr(node.id);
  const NodePayload payload = node.payload();
  const std::uint64_t mac = cme_.mac().node_mac(payload, addr, generated);
  charge_hash(now);
  now = timed_write(addr, node.to_block(mac), now);
  ++stats_.meta_writes;

  const unsigned k = node.id.level;
  if (geo_.is_top_level(node.id)) {
    const std::uint64_t delta = generated - root_[node.id.index];
    root_[node.id.index] = generated;
    lincs_[k] -= delta;  // the root is persistent; no LInc above it
    return now;
  }

  const NodeId parent_id = geo_.parent_of(node.id);
  const std::size_t slot = geo_.slot_in_parent(node.id);
  ++stats_.mcache_accesses;
  if (MetadataLine* pl = mcache_.peek_mut(geo_.node_addr(parent_id))) {
    // Parent cached: apply immediately (Fig. 7, node A). Any pending buffer
    // entry for this slot is absorbed by this larger update — drop it so it
    // can neither regress the slot nor double-count at recovery.
    std::erase_if(nv_buffer_, [&](const BufferEntry& e) {
      return e.parent == parent_id && e.slot == slot;
    });
    const std::uint64_t delta = generated - pl->payload.gc.counters[slot];
    pl->payload.gc.counters[slot] = generated;
    const bool was_clean = !pl->dirty;
    pl->dirty = true;
    on_node_modified(parent_id, now);
    if (was_clean) on_node_dirtied(parent_id, now);
    lincs_[k] -= delta;
    lincs_[k + 1] += delta;
  } else {
    // Parent not cached: park the generated counter in the NV buffer and
    // finish the write (Fig. 7, node B) — no parent read on this path.
    // (During a drain the buffer may transiently exceed its capacity while
    // the in-place application walks it; it is empty again when the drain
    // returns.)
    if (nv_buffer_.size() >= nv_buffer_capacity_) drain_nv_buffer(now);
    nv_buffer_.push_back(BufferEntry{parent_id, slot, generated});
  }
  return now;
}

SecureMemoryBase::CounterBump SteinsMemory::bump_leaf_counter(MetadataLine& leaf,
                                                              std::size_t slot, Cycle& now) {
  CounterBump bump;
  SitNode& node = leaf.payload;
  bump.pv_before = node.parent_value();
  if (node.split) {
    const SitNode before = node;
    const auto r = node.sc.increment_skip(slot);  // skip-increment (§III-B1)
    bump.overflowed = r.overflowed;
    if (r.overflowed) {
      reencrypt_covered_blocks(before, node, slot, now);
      // Write-through on overflow keeps the major current in NVM, so
      // recovery never has to search major values (paper §II-D).
      now = write_through_node(leaf, now);
    }
    bump.enc_counter = node.sc.encryption_counter(slot);
    bump.aux = node.sc.major;
  } else {
    node.gc.increment(slot);
    bump.enc_counter = node.gc.counters[slot];
    // Osiris-style stop-loss: bounded trial range for leaf recovery.
    if (node.gc.counters[slot] % kStopLoss == 0) now = write_through_node(leaf, now);
  }
  bump.pv_after = node.parent_value();
  lincs_[0] += bump.pv_after - bump.pv_before;
  return bump;
}

// ---------------------------------------------------------------------------
// Crash & recovery
// ---------------------------------------------------------------------------

void SteinsMemory::crash() {
  // A nested recovery crash can unwind mid-drain; the guard must not stay
  // latched or post-recovery drains would silently no-op.
  draining_ = false;
  // Drain the write queue first: a queued (older) record-line write must
  // not overwrite the newer ADR-resident copy flushed below.
  SecureMemoryBase::crash();
  // ADR flushes the cached record lines (merging modified slots); the LIncs
  // register, the NV parent buffer, and the root register survive as-is.
  record_cache_.for_each([&](SetAssocCache<RecordLine>::Line& line) {
    if (line.dirty) {
      Cycle t = 0;
      flush_record_line(line.tag, line.payload, t);
    }
  });
  record_cache_.clear();
}

// ---------------------------------------------------------------------------
// Re-entrant recovery: resume cursor
// ---------------------------------------------------------------------------

void SteinsMemory::persist_recovery_cursor(const std::vector<std::vector<NodeId>>& by_level,
                                           bool degraded) {
  // Throw-before-poke: an armed crash at this boundary leaves the region
  // exactly as the previous attempt left it (or absent).
  recovery_persist_boundary("cursor");
  std::vector<std::uint32_t> offs;
  for (const auto& lvl : by_level) {
    for (const NodeId id : lvl) offs.push_back(geo_.offset_of(id) + 1);
  }
  std::uint32_t flags = degraded ? kCursorFlagDegraded : 0u;
  if (offs.size() > cursor_capacity_) {
    // Too many candidates for the window: persist only the overflow flag;
    // a re-entry falls back to the resident scan, which is a superset.
    flags |= kCursorFlagOverflow;
    offs.clear();
  }
  Block hdr = zero_block();
  const std::uint64_t magic = kCursorMagic;
  const std::uint32_t count = static_cast<std::uint32_t>(offs.size());
  std::memcpy(hdr.data(), &magic, 8);
  std::memcpy(hdr.data() + 8, &count, 4);
  std::memcpy(hdr.data() + 12, &flags, 4);
  dev_.poke_block(cursor_base_, hdr);
  ++recovery_writes_;
  for (std::size_t line = 0; line * kOffsetsPerRecordLine < offs.size(); ++line) {
    Block b = zero_block();
    const std::size_t lo = line * kOffsetsPerRecordLine;
    const std::size_t n = std::min(kOffsetsPerRecordLine, offs.size() - lo);
    std::memcpy(b.data(), offs.data() + lo, n * 4);
    dev_.poke_block(cursor_line_addr(line + 1), b);
    ++recovery_writes_;
  }
  recovery_cursor_pos_ = offs.size();
}

bool SteinsMemory::load_recovery_cursor(std::vector<std::uint32_t>* offsets, bool* degraded) {
  if (!dev_.contains(cursor_base_)) return false;
  ++recovery_reads_;
  bool dead = false;
  const Block hdr = dev_.peek_corrected(cursor_base_, &dead);
  std::uint64_t magic = 0;
  std::uint32_t count = 0;
  std::uint32_t flags = 0;
  if (!dead) {
    std::memcpy(&magic, hdr.data(), 8);
    std::memcpy(&count, hdr.data() + 8, 4);
    std::memcpy(&flags, hdr.data() + 12, 4);
  }
  if (dead || (magic != 0 && magic != kCursorMagic)) {
    // The cursor is self-written plain NVM: an unreadable or malformed
    // header means media loss or tampering. Degrade to the resident scan
    // (a superset of any candidate set the cursor could have held).
    *degraded = true;
    return true;
  }
  if (magic == 0) return false;  // cleared cursor: no prior attempt pending
  if ((flags & kCursorFlagOverflow) != 0) {
    *degraded = true;
    return true;
  }
  if ((flags & kCursorFlagDegraded) != 0) *degraded = true;
  for (std::size_t line = 0; line * kOffsetsPerRecordLine < count; ++line) {
    ++recovery_reads_;
    bool edead = false;
    const Block b = dev_.peek_corrected(cursor_line_addr(line + 1), &edead);
    if (edead) {
      *degraded = true;
      continue;
    }
    const std::size_t lo = line * kOffsetsPerRecordLine;
    const std::size_t n = std::min(kOffsetsPerRecordLine, std::size_t{count} - lo);
    for (std::size_t s = 0; s < n; ++s) {
      std::uint32_t o = 0;
      std::memcpy(&o, b.data() + s * 4, 4);
      if (o == 0 || o - 1 >= geo_.total_nodes()) {
        *degraded = true;  // corrupt entry: fall back rather than mis-index
        continue;
      }
      offsets->push_back(o);
    }
  }
  return true;
}

void SteinsMemory::clear_recovery_cursor() {
  if (!dev_.contains(cursor_base_)) return;
  recovery_persist_boundary("cursor");
  dev_.poke_block(cursor_base_, zero_block());
  ++recovery_writes_;
}

bool SteinsMemory::in_quarantined(const RecoveryCtx& ctx, NodeId id) {
  for (const auto& [ql, qi] : ctx.quarantined) {
    if (id.level > ql) continue;
    // kTreeArity = 8: indexes shrink by 3 bits per level climbed.
    if ((id.index >> (3 * (ql - id.level))) == qi) return true;
  }
  return false;
}

void SteinsMemory::quarantine_subtree_ctx(NodeId id, RecoveryCtx& ctx,
                                          QuarantineReason reason) {
  if (in_quarantined(ctx, id)) return;
  ctx.quarantined.emplace_back(id.level, id.index);
  ctx.linc_skip = true;  // the subtree's counter increases are unknowable
  quarantine_node_subtree(id, reason);
}

bool SteinsMemory::recovery_counters(NodeId id, RecoveryCtx& ctx, SitNode* out) {
  if (in_quarantined(ctx, id)) return false;
  const std::uint64_t key = flat_key(geo_, id);
  if (const SitNode* hit = ctx.recovered.find(key)) {
    *out = *hit;
    return true;
  }
  if (const SitNode* hit = ctx.clean_verified.find(key)) {
    *out = *hit;
    return true;
  }
  const Addr addr = geo_.node_addr(id);
  const bool exists = dev_.contains(addr);
  ++recovery_reads_;
  bool dead = false;
  std::uint64_t stored = 0;
  SitNode node = SitNode::from_block(id, leaf_is_split() && id.level == 0,
                                     dev_.peek_corrected(addr, &dead), &stored);
  if (exists && dead) {
    quarantine_subtree_ctx(id, ctx, QuarantineReason::kEccMeta);
    return false;
  }

  std::uint64_t pc = 0;
  if (geo_.is_top_level(id)) {
    pc = root_[id.index];
  } else {
    SitNode parent;
    if (!recovery_counters(geo_.parent_of(id), ctx, &parent)) return false;
    pc = parent.gc.counters[geo_.slot_in_parent(id)];
  }
  if (exists) {
    const std::uint64_t mac = cme_.mac().node_mac(node.payload(), addr, pc);
    if (mac != stored) {
      note_attack(ctx.result, static_cast<int>(id.level),
                  "tampered SIT node detected by HMAC at level " + std::to_string(id.level));
      quarantine_subtree_ctx(id, ctx, QuarantineReason::kLost);
      return false;
    }
  } else if (pc != 0) {
    note_attack(ctx.result, static_cast<int>(id.level),
                "SIT node erased (missing with nonzero parent counter)");
    quarantine_subtree_ctx(id, ctx, QuarantineReason::kLost);
    return false;
  }
  ctx.clean_verified.get_or_create(key) = node;
  *out = node;
  return true;
}

void SteinsMemory::rebuild_from_children(NodeId id, const SitNode& stale, RecoveryCtx& ctx,
                                         SitNode* out) {
  SitNode node = stale;
  node.id = id;
  const std::size_t n = geo_.num_children(id);
  for (std::size_t j = 0; j < n; ++j) {
    const NodeId child = geo_.child_of(id, j);
    if (in_quarantined(ctx, child)) continue;  // keep the stale slot value
    const Addr caddr = geo_.node_addr(child);
    ++recovery_reads_;
    if (!dev_.contains(caddr)) {
      if (stale.gc.counters[j] != 0) {
        note_attack(ctx.result, static_cast<int>(child.level),
                    "child node erased during recovery");
        quarantine_subtree_ctx(child, ctx, QuarantineReason::kLost);
        continue;
      }
      node.gc.counters[j] = 0;
      continue;
    }
    bool dead = false;
    std::uint64_t stored = 0;
    const SitNode cnode = SitNode::from_block(child, leaf_is_split() && child.level == 0,
                                              dev_.peek_corrected(caddr, &dead), &stored);
    if (dead) {
      quarantine_subtree_ctx(child, ctx, QuarantineReason::kEccMeta);
      continue;  // stale slot value stays; the subtree's data is blocked
    }
    // Regenerate the parent counter from the child and verify the child's
    // HMAC with it (paper Fig. 6): detects tampering; replay is caught by
    // the LInc comparison afterwards.
    const std::uint64_t regenerated = cnode.parent_value();
    const std::uint64_t mac = cme_.mac().node_mac(cnode.payload(), caddr, regenerated);
    if (mac != stored) {
      note_attack(ctx.result, static_cast<int>(child.level),
                  "tampered child detected by HMAC at level " + std::to_string(child.level));
      quarantine_subtree_ctx(child, ctx, QuarantineReason::kLost);
      continue;
    }
    node.gc.counters[j] = regenerated;
  }
  *out = node;
}

void SteinsMemory::rebuild_leaf_from_data(NodeId id, const SitNode& stale, RecoveryCtx& ctx,
                                          SitNode* out) {
  SitNode node = stale;
  node.id = id;
  const std::uint64_t cover = geo_.leaf_coverage();
  for (std::uint64_t j = 0; j < cover; ++j) {
    const std::uint64_t block = id.index * cover + j;
    if (block >= geo_.data_blocks()) break;
    const Addr daddr = block * kBlockSize;
    ++recovery_reads_;
    const std::uint64_t stale_ctr = node.split
                                        ? static_cast<std::uint64_t>(stale.sc.minors[j])
                                        : stale.gc.counters[j];
    if (!dev_.contains(daddr)) {
      if (stale_ctr != 0) {
        if (qmap_.read_blocked(daddr)) {
          // A previously retired line: its image was dropped with the remap.
          ctx.linc_skip = true;
          continue;
        }
        note_attack(ctx.result, 0, "data block erased during recovery");
        quarantine_data_line(daddr, QuarantineReason::kLost);
        ctx.linc_skip = true;
      }
      continue;  // never-written block: counter stays zero
    }
    bool dead = false;
    const Block ct = dev_.peek_corrected(daddr, &dead);
    if (dead) {
      // The line's content is gone; its counter increments since the stale
      // image are unknowable. Retire the line, keep the stale counter.
      quarantine_data_line(daddr, QuarantineReason::kEccData);
      ctx.linc_skip = true;
      continue;
    }
    const std::uint64_t tag = dev_.read_tag(daddr);
    bool found = false;
    if (node.split) {
      // Write-through-on-overflow keeps the major current in NVM, so only
      // the minor needs searching, and minors only grow within a major.
      const std::uint64_t major = stale.sc.major;
      for (std::uint64_t m = stale_ctr; m < kMinorMax; ++m) {
        const std::uint64_t ctr = (major << kMinorBits) | m;
        if (cme_.data_mac(ct, daddr, ctr, major) == tag) {
          node.sc.minors[j] = static_cast<std::uint8_t>(m);
          found = true;
          break;
        }
      }
    } else {
      // Stop-loss bounds the search window to kStopLoss increments.
      for (std::uint64_t c = stale_ctr; c <= stale_ctr + kStopLoss; ++c) {
        if (cme_.data_mac(ct, daddr, c, 0) == tag) {
          node.gc.counters[j] = c;
          found = true;
          break;
        }
      }
    }
    if (!found) {
      note_attack(ctx.result, 0,
                  "data block HMAC matched no counter in the recovery window (tamper/replay)");
      quarantine_data_line(daddr, QuarantineReason::kLost);
      ctx.linc_skip = true;
    }
  }
  *out = node;
}

RecoveryReport SteinsMemory::recover() {
  RecoveryReport result;
  recovery_prologue();
  RecoveryCtx ctx;
  ctx.result = &result;
  try {
    recover_impl(ctx, result);
  } catch (const IntegrityViolation& e) {
    note_attack(&result, -1, e.what());
  } catch (const StatusError& e) {
    result.status = e.status();
  } catch (const std::exception& e) {
    result.status = Status(ErrorCode::kInternal, e.what());
  }
  if (ctx.record_fallback) result.tracking_degraded = true;
  if (ctx.linc_skip && result.linc_unverified.empty()) {
    // Losses before/outside the level walk: no level's sum was checkable.
    for (unsigned k = 0; k < geo_.num_levels(); ++k) result.linc_unverified.push_back(k);
  }
  // The attempt is complete (even an attack verdict is a completed attempt):
  // retire the resume cursor. May itself cross an armed boundary, in which
  // case the retry re-runs the whole — idempotent — recovery.
  clear_recovery_cursor();
  return finish_recovery(std::move(result));
}

void SteinsMemory::recover_impl(RecoveryCtx& ctx, RecoveryReport& result) {
  // Step 1: read the offset records to locate candidate dirty nodes
  // (a superset of the truly dirty set; clean entries are harmless, §III-H).
  std::vector<std::vector<NodeId>> by_level(geo_.num_levels());
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t line = 0; line < record_lines_; ++line) {
    ++recovery_reads_;
    bool dead = false;
    const Block rec = dev_.peek_corrected(record_line_addr(line), &dead);
    if (dead) {
      // The dirty-set hint for this line's nodes is gone; fall back to a
      // resident-metadata scan below (still a superset of the dirty set).
      ctx.record_fallback = true;
      continue;
    }
    const auto offsets = decode_record(rec);
    for (const std::uint32_t o : offsets) {
      if (o == 0) continue;
      // Stored offsets are offset_of(id)+1, so valid values are bounded by
      // the node count; anything else is a corrupted record line. Records
      // are only a superset hint, but a malformed entry means the ADR
      // domain lied — indistinguishable from tampering, so flag it rather
      // than index out of the tree.
      if (o - 1 >= geo_.total_nodes()) {
        note_attack(&result, -1, "corrupted offset record (node offset out of range)");
        ctx.record_fallback = true;
        continue;
      }
      const NodeId id = geo_.node_at_offset(o - 1);
      if (seen.insert(flat_key(geo_, id)).second) by_level[id.level].push_back(id);
    }
  }
  // Step 1b (re-entrant recovery): union the previous attempt's persisted
  // cursor. A crashed attempt may already have retired the NV parent buffer
  // and overwritten record slots (step-5 installs re-record their nodes),
  // so the cursor is the only complete candidate source on re-entry.
  std::vector<std::uint32_t> cursor_offs;
  bool cursor_degraded = false;
  if (load_recovery_cursor(&cursor_offs, &cursor_degraded) && cursor_degraded) {
    ctx.record_fallback = true;
  }

  if (ctx.record_fallback) {
    // Dirty-set tracking is degraded: take every resident SIT node as a
    // candidate. Clean candidates rebuild to themselves (delta 0) and only
    // cost reads; truly dirty nodes are guaranteed to be covered. The LInc
    // sums are not comparable against this candidate set.
    for (auto& lvl : by_level) lvl.clear();
    seen.clear();
    for (const Addr a : dev_.resident_blocks(geo_.meta_base(),
                                             geo_.meta_base() + geo_.total_nodes() * kBlockSize)) {
      const NodeId id = geo_.node_at(a);
      if (seen.insert(flat_key(geo_, id)).second) by_level[id.level].push_back(id);
    }
    ctx.linc_skip = true;
  }
  for (const std::uint32_t o : cursor_offs) {
    const NodeId id = geo_.node_at_offset(o - 1);
    if (seen.insert(flat_key(geo_, id)).second) by_level[id.level].push_back(id);
  }
  // Nodes targeted by parked parent counters are dirty too.
  for (const auto& e : nv_buffer_) {
    if (seen.insert(flat_key(geo_, e.parent)).second) by_level[e.parent.level].push_back(e.parent);
  }

  // Persist the resume cursor — the full candidate set — before any durable
  // recovery mutation. Crossing this boundary is the first persist of a
  // Steins recovery attempt.
  persist_recovery_cursor(by_level, ctx.record_fallback);

  // Fig. 8 step-5 LInc re-balancing, hoisted ahead of the walk and applied
  // for every level at once; the buffer is retired immediately after. The
  // buffered counter is already reflected in the persistent child, so only
  // the LIncs need re-balancing. Entries are applied in FIFO order against
  // a running per-slot value so multiple entries for one slot contribute
  // exactly their net increase, and entries already absorbed by an inline
  // update (counter <= stale) contribute nothing. Hoisting is what makes
  // re-entry sound: the adjustments are NV-register mutations with no
  // persist boundary among them, so a nested crash observes either the
  // buffer intact with the LIncs untouched (crash at the cursor boundary
  // or earlier) or the buffer empty with the LIncs fully adjusted — never
  // a double apply.
  {
    FlatMap<std::uint64_t> applied;  // (node,slot) -> value
    for (const auto& e : nv_buffer_) {
      const unsigned k = e.parent.level;
      const std::uint64_t slot_key = flat_key(geo_, e.parent) * kTreeArity + e.slot;
      std::uint64_t* value = applied.find(slot_key);
      if (value == nullptr) {
        const Addr paddr = geo_.node_addr(e.parent);
        ++recovery_reads_;
        bool dead = false;
        const Block pimg = dev_.peek_corrected(paddr, &dead);
        if (dead) {
          // Cannot compute this entry's net increase; the parent itself is
          // quarantined when the level walk reaches it.
          ctx.linc_skip = true;
          continue;
        }
        const SitNode stale = SitNode::from_block(e.parent, false, pimg);
        value = &applied.get_or_create(slot_key);
        *value = stale.gc.counters[e.slot];
      }
      if (e.counter <= *value) continue;  // absorbed by a later inline update
      const std::uint64_t delta = e.counter - *value;
      *value = e.counter;
      lincs_[k] += delta;
      lincs_[k - 1] -= delta;
    }
    nv_buffer_.clear();
  }

  // Steps 2-4 (Fig. 8): recover level by level, from the root downward.
  // Failures no longer abort the walk: the failing subtree is quarantined
  // (its data range is blocked and, for MAC-type failures, the attack is
  // flagged) and the walk salvages every sibling it can still verify.
  for (int k = static_cast<int>(geo_.top_level()); k >= 0; --k) {
    std::uint64_t level_sum = 0;
    for (const NodeId id : by_level[static_cast<std::size_t>(k)]) {
      if (in_quarantined(ctx, id)) continue;  // ancestor already written off
      // Read the stale version and verify it against its (already
      // recovered) parent or the root register.
      const Addr addr = geo_.node_addr(id);
      const bool exists = dev_.contains(addr);
      ++recovery_reads_;
      bool dead = false;
      std::uint64_t stored = 0;
      const SitNode stale = SitNode::from_block(id, leaf_is_split() && id.level == 0,
                                                dev_.peek_corrected(addr, &dead), &stored);
      if (exists && dead) {
        quarantine_subtree_ctx(id, ctx, QuarantineReason::kEccMeta);
        continue;
      }
      std::uint64_t pc = 0;
      if (geo_.is_top_level(id)) {
        pc = root_[id.index];
      } else {
        SitNode parent;
        if (!recovery_counters(geo_.parent_of(id), ctx, &parent)) continue;
        pc = parent.gc.counters[geo_.slot_in_parent(id)];
      }
      if (exists) {
        if (cme_.mac().node_mac(stale.payload(), addr, pc) != stored) {
          note_attack(&result, k,
                      "stale node failed parent verification at level " + std::to_string(k));
          quarantine_subtree_ctx(id, ctx, QuarantineReason::kLost);
          continue;
        }
      } else if (pc != 0) {
        note_attack(&result, k, "stale node erased at level " + std::to_string(k));
        quarantine_subtree_ctx(id, ctx, QuarantineReason::kLost);
        continue;
      }

      // Rebuild the latest counters from the persistent children.
      SitNode rebuilt;
      if (k == 0) {
        rebuild_leaf_from_data(id, stale, ctx, &rebuilt);
      } else {
        rebuild_from_children(id, stale, ctx, &rebuilt);
      }

      level_sum += rebuilt.parent_value() - stale.parent_value();
      ctx.recovered.get_or_create(flat_key(geo_, id)) = rebuilt;
      ++result.nodes_recovered;
    }

    // Replay check (Fig. 8 steps 3-4 / 9-10): the summed counter increase
    // of this level must equal the stored LInc — replayed children yield a
    // smaller sum. With any quarantined loss the sum is no longer
    // comparable; the level is reported unverified instead.
    if (ctx.linc_skip) {
      result.linc_unverified.push_back(static_cast<unsigned>(k));
    } else if (level_sum != lincs_[static_cast<std::size_t>(k)]) {
      note_attack(&result, k,
                  "LInc mismatch at level " + std::to_string(k) +
                      " (replay attack or forged records)");
      return;
    }
  }

  // Step 5: install the recovered nodes into the metadata cache, marked
  // dirty (paper: "all the retrieved nodes will be marked as dirty"), and
  // rebuild the offset records for them. After a detected attack the tree
  // is not re-armed: the report carries the verdict and the caller decides.
  if (result.attack_detected) return;
  Cycle t = 0;
  for (int k = static_cast<int>(geo_.top_level()); k >= 0; --k) {
    for (const NodeId id : by_level[static_cast<std::size_t>(k)]) {
      if (in_quarantined(ctx, id)) continue;
      const SitNode* rec = ctx.recovered.find(flat_key(geo_, id));
      if (rec == nullptr) continue;
      const Addr addr = geo_.node_addr(id);
      if (mcache_.peek(addr) != nullptr) continue;
      auto victim = mcache_.insert(addr, true, *rec);
      if (victim && victim->dirty) {
        t = persist_detached(victim->payload, t);
        finish_clean(victim->payload.id, t);
      }
      on_node_dirtied(id, t);
    }
  }
}

}  // namespace steins
